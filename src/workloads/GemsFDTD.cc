/**
 * @file
 * SPEC CPU2006 459.GemsFDTD proxy: coupled E/H field updates on a 2D
 * Yee-style grid (finite-difference time domain), two dependent
 * sweeps per timestep.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long NX = 64, NY = 64;
constexpr std::size_t cells = std::size_t(NX * NY);
constexpr double ce = 0.4, ch = 0.3;

std::uint64_t
reference(std::vector<double> e, unsigned steps)
{
    std::vector<double> h(cells, 0.0);
    auto idx = [](long x, long y) { return std::size_t(y * NX + x); };
    for (unsigned s = 0; s < steps; ++s) {
        for (long y = 0; y < NY - 1; ++y)
            for (long x = 0; x < NX - 1; ++x)
                h[idx(x, y)] = h[idx(x, y)] -
                               ch * ((e[idx(x + 1, y)] - e[idx(x, y)]) +
                                     (e[idx(x, y + 1)] - e[idx(x, y)]));
        for (long y = 1; y < NY; ++y)
            for (long x = 1; x < NX; ++x)
                e[idx(x, y)] = e[idx(x, y)] +
                               ce * ((h[idx(x, y)] - h[idx(x - 1, y)]) +
                                     (h[idx(x, y)] - h[idx(x, y - 1)]));
    }
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < cells; i += 3)
        acc = mixDouble(acc, e[i]);
    return acc;
}

} // namespace

Workload
buildGemsFDTD(unsigned scale)
{
    const unsigned steps = 6 * scale;
    const auto e0 = randomDoubles(cells, 0x6e35);
    const Addr eBase = dataBase;
    const Addr hBase = dataBase + cells * 8 + 64;
    const Addr cBase = hBase + cells * 8 + 64;

    isa::ProgramBuilder b("GemsFDTD");
    emitDataF(b, eBase, e0);
    b.footprint(hBase, cells * 8, "h-field");
    b.dataF64(cBase, ce);
    b.dataF64(cBase + 8, ch);

    constexpr long sx = 8, sy = NX * 8;

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);   // ce
    b.fld(f11, x1, 8);   // ch
    b.ldi(x21, eBase);
    b.ldi(x22, hBase);
    b.ldi(x15, steps);

    b.label("step");
    // H sweep: y in [0, NY-2], x in [0, NX-2].
    b.ldi(x3, 0);
    b.label("hy");
    b.ldi(x5, NX);
    b.mul(x6, x3, x5);
    b.slli(x6, x6, 3);
    b.add(x7, x6, x21);       // &e[0,y]
    b.add(x8, x6, x22);       // &h[0,y]
    b.ldi(x4, NX - 1);
    b.label("hx");
    b.fld(f1, x7, 0);         // e[x,y]
    b.fld(f2, x7, sx);        // e[x+1,y]
    b.fld(f3, x7, sy);        // e[x,y+1]
    b.fsub(f2, f2, f1);
    b.fsub(f3, f3, f1);
    b.fadd(f2, f2, f3);
    b.fmul(f2, f11, f2);
    b.fld(f4, x8, 0);
    b.fsub(f4, f4, f2);
    b.fsd(f4, x8, 0);
    b.addi(x7, x7, 8);
    b.addi(x8, x8, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "hx");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY - 1);
    b.bne(x3, x5, "hy");

    // E sweep: y in [1, NY-1], x in [1, NX-1].
    b.ldi(x3, 1);
    b.label("ey");
    b.ldi(x5, NX);
    b.mul(x6, x3, x5);
    b.addi(x6, x6, 1);
    b.slli(x6, x6, 3);
    b.add(x7, x6, x21);
    b.add(x8, x6, x22);
    b.ldi(x4, NX - 1);
    b.label("ex");
    b.fld(f1, x8, 0);         // h[x,y]
    b.fld(f2, x8, -sx);
    b.fld(f3, x8, -sy);
    b.fsub(f2, f1, f2);
    b.fsub(f3, f1, f3);
    b.fadd(f2, f2, f3);
    b.fmul(f2, f10, f2);
    b.fld(f4, x7, 0);
    b.fadd(f4, f4, f2);
    b.fsd(f4, x7, 0);
    b.addi(x7, x7, 8);
    b.addi(x8, x8, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "ex");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY);
    b.bne(x3, x5, "ey");

    b.addi(x15, x15, -1);
    b.bne(x15, x0, "step");

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x7, eBase);
    b.ldi(x2, 0);
    b.ldi(x3, cells);
    b.label("sum");
    b.fld(f1, x7, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x7, x7, 24);
    b.addi(x2, x2, 3);
    b.blt(x2, x3, "sum");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "GemsFDTD";
    w.description = "GemsFDTD proxy: coupled E/H Yee-grid sweeps";
    w.program = b.build();
    w.expectedResult = reference(e0, steps);
    w.fpHeavy = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
