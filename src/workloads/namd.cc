/**
 * @file
 * SPEC CPU2006 444.namd proxy: pairwise particle force computation
 * with a cutoff test -- branchy FP with divides and square roots,
 * molecular-dynamics style.
 */

#include "workloads/common.hh"

#include <cmath>

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t numParticles = 96;
constexpr double cutoff2 = 1.1;

std::uint64_t
reference(const std::vector<double> &pos, unsigned passes)
{
    // pos: x[i], y[i], z[i] concatenated.
    const double *xs = pos.data();
    const double *ys = pos.data() + numParticles;
    const double *zs = pos.data() + 2 * numParticles;
    std::vector<double> fx(numParticles, 0.0);
    std::uint64_t acc = 0;
    for (unsigned p = 0; p < passes; ++p) {
        for (std::size_t i = 0; i < numParticles; ++i) {
            for (std::size_t j = i + 1; j < numParticles; ++j) {
                double dx = xs[i] - xs[j];
                double dy = ys[i] - ys[j];
                double dz = zs[i] - zs[j];
                double r2 = (dx * dx + dy * dy) + dz * dz;
                if (r2 < cutoff2) {
                    double inv = 1.0 / r2;
                    double s = std::sqrt(inv);
                    double fr = inv * inv - 0.5 * (inv * s);
                    fx[i] = fx[i] + fr * dx;
                    fx[j] = fx[j] - fr * dx;
                }
            }
            acc = mixDouble(acc, fx[i]);
        }
    }
    return acc;
}

} // namespace

Workload
buildNamd(unsigned scale)
{
    const unsigned passes = 2 * scale;
    const auto pos = randomDoubles(3 * numParticles, 0xa4d);
    const Addr posBase = dataBase;
    const Addr fxBase = dataBase + pos.size() * 8 + 64;
    const Addr cBase = fxBase + numParticles * 8 + 64;

    isa::ProgramBuilder b("namd");
    emitDataF(b, posBase, pos);
    b.footprint(fxBase, numParticles * 8, "forces");
    b.dataF64(cBase, cutoff2);
    b.dataF64(cBase + 8, 1.0);
    b.dataF64(cBase + 16, 0.5);

    constexpr long ybytes = numParticles * 8;
    constexpr long zbytes = 2 * ybytes;

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);  // cutoff2
    b.fld(f11, x1, 8);  // 1.0
    b.fld(f12, x1, 16); // 0.5
    b.ldi(x21, posBase);
    b.ldi(x22, fxBase);
    b.ldi(x15, passes);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x31, 0);
    b.ldi(x18, numParticles);

    b.label("pass");
    b.ldi(x2, 0);                 // i
    b.label("iloop");
    b.slli(x5, x2, 3);
    b.add(x5, x5, x21);           // &x[i]
    b.fld(f1, x5, 0);             // xi
    b.fld(f2, x5, ybytes);        // yi
    b.fld(f3, x5, zbytes);        // zi
    b.addi(x3, x2, 1);            // j
    b.bge(x3, x18, "inext");
    b.label("jloop");
    b.slli(x6, x3, 3);
    b.add(x6, x6, x21);
    b.fld(f4, x6, 0);
    b.fld(f5, x6, ybytes);
    b.fld(f6, x6, zbytes);
    b.fsub(f4, f1, f4);           // dx
    b.fsub(f5, f2, f5);           // dy
    b.fsub(f6, f3, f6);           // dz
    b.fmul(f7, f4, f4);
    b.fmul(f8, f5, f5);
    b.fadd(f7, f7, f8);
    b.fmul(f8, f6, f6);
    b.fadd(f7, f7, f8);           // r2
    b.flt(x7, f7, f10);
    b.beq(x7, x0, "jnext");
    b.fdiv(f8, f11, f7);          // inv
    b.fsqrt(f9, f8);              // s
    b.fmul(f13, f8, f8);          // inv*inv
    b.fmul(f14, f8, f9);          // inv*s
    b.fmul(f14, f12, f14);        // 0.5*(inv*s)
    b.fsub(f13, f13, f14);        // fr
    b.fmul(f13, f13, f4);         // fr*dx
    // fx[i] += fr*dx; fx[j] -= fr*dx
    b.slli(x8, x2, 3);
    b.add(x8, x8, x22);
    b.fld(f14, x8, 0);
    b.fadd(f14, f14, f13);
    b.fsd(f14, x8, 0);
    b.slli(x8, x3, 3);
    b.add(x8, x8, x22);
    b.fld(f14, x8, 0);
    b.fsub(f14, f14, f13);
    b.fsd(f14, x8, 0);
    b.label("jnext");
    b.addi(x3, x3, 1);
    b.blt(x3, x18, "jloop");
    b.label("inext");
    // acc fold fx[i]
    b.slli(x8, x2, 3);
    b.add(x8, x8, x22);
    b.fld(f14, x8, 0);
    b.fmvXD(x9, f14);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x2, x2, 1);
    b.blt(x2, x18, "iloop");
    b.addi(x15, x15, -1);
    b.bne(x15, x0, "pass");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "namd";
    w.description = "namd proxy: cutoff pair forces with div/sqrt";
    w.program = b.build();
    w.expectedResult = reference(pos, passes);
    w.fpHeavy = true;
    return w;
}

} // namespace workloads
} // namespace paradox
