/**
 * @file
 * SPEC CPU2006 410.bwaves proxy: 7-point 3D stencil sweeps over a
 * ping-pong pair of grids -- blast-wave CFD's regular, memory-heavy
 * FP pattern with long unit-stride streams.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long NX = 32, NY = 32, NZ = 8;
constexpr std::size_t cells = std::size_t(NX * NY * NZ);
constexpr double c0 = 0.4, c1 = 0.1;

std::uint64_t
reference(std::vector<double> grid, unsigned iters)
{
    std::vector<double> other(cells, 0.0);
    auto idx = [](long x, long y, long z) {
        return std::size_t((z * NY + y) * NX + x);
    };
    std::vector<double> *src = &grid, *dst = &other;
    for (unsigned it = 0; it < iters; ++it) {
        for (long z = 1; z < NZ - 1; ++z) {
            for (long y = 1; y < NY - 1; ++y) {
                for (long x = 1; x < NX - 1; ++x) {
                    const std::vector<double> &s = *src;
                    // Pairwise grouping matches the PDX64 kernel's
                    // FP evaluation order exactly (bit-for-bit).
                    double nb =
                        ((s[idx(x - 1, y, z)] + s[idx(x + 1, y, z)]) +
                         (s[idx(x, y - 1, z)] + s[idx(x, y + 1, z)])) +
                        (s[idx(x, y, z - 1)] + s[idx(x, y, z + 1)]);
                    double v = c0 * s[idx(x, y, z)] + c1 * nb;
                    (*dst)[idx(x, y, z)] = v;
                }
            }
        }
        std::swap(src, dst);
    }
    std::uint64_t acc = 0;
    for (long z = 1; z < NZ - 1; ++z)
        for (long y = 1; y < NY - 1; ++y)
            for (long x = 1; x < NX - 1; ++x)
                acc = mixDouble(acc, (*src)[idx(x, y, z)]);
    return acc;
}

} // namespace

Workload
buildBwaves(unsigned scale)
{
    const unsigned iters = 3 * scale;
    const auto grid = randomDoubles(cells, 0xb3a7e5);
    const Addr aBase = dataBase;
    const Addr bBase = dataBase + cells * 8 + 64;
    const Addr cBase = bBase + cells * 8 + 64;  // coefficients

    isa::ProgramBuilder b("bwaves");
    emitDataF(b, aBase, grid);
    b.dataF64(cBase, c0);
    b.dataF64(cBase + 8, c1);

    constexpr long sx = 8, sy = NX * 8, sz = NX * NY * 8;

    b.ldi(x1, cBase);
    b.fld(f10, x1, 0);   // c0
    b.fld(f11, x1, 8);   // c1
    b.ldi(x21, aBase);   // src
    b.ldi(x22, bBase);   // dst
    b.ldi(x15, iters);

    b.label("iter");
    b.ldi(x2, 1);                 // z
    b.label("zloop");
    b.ldi(x3, 1);                 // y
    b.label("yloop");
    // p = src + idx(1, y, z)*8; q = dst + same
    b.ldi(x5, NX);
    b.mul(x6, x2, x5);            // z*NX (used as z*NY since NX==NY)
    b.add(x6, x6, x3);
    b.mul(x6, x6, x5);
    b.addi(x6, x6, 1);
    b.slli(x6, x6, 3);
    b.add(x7, x6, x21);           // p
    b.add(x8, x6, x22);           // q
    b.ldi(x4, NX - 2);            // x count
    b.label("xloop");
    b.fld(f1, x7, 0);
    b.fld(f2, x7, -sx);
    b.fld(f3, x7, sx);
    b.fld(f4, x7, -sy);
    b.fld(f5, x7, sy);
    b.fld(f6, x7, -sz);
    b.fld(f7, x7, sz);
    b.fadd(f2, f2, f3);
    b.fadd(f4, f4, f5);
    b.fadd(f6, f6, f7);
    b.fadd(f2, f2, f4);
    b.fadd(f2, f2, f6);
    b.fmul(f1, f10, f1);
    b.fmul(f2, f11, f2);
    b.fadd(f1, f1, f2);
    b.fsd(f1, x8, 0);
    b.addi(x7, x7, 8);
    b.addi(x8, x8, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "xloop");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY - 1);
    b.bne(x3, x5, "yloop");
    b.addi(x2, x2, 1);
    b.ldi(x5, NZ - 1);
    b.bne(x2, x5, "zloop");
    // swap src/dst
    b.mv(x5, x21);
    b.mv(x21, x22);
    b.mv(x22, x5);
    b.addi(x15, x15, -1);
    b.bne(x15, x0, "iter");

    // Checksum over the interior of src.
    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x2, 1);
    b.label("cz");
    b.ldi(x3, 1);
    b.label("cy");
    b.ldi(x5, NX);
    b.mul(x6, x2, x5);
    b.add(x6, x6, x3);
    b.mul(x6, x6, x5);
    b.addi(x6, x6, 1);
    b.slli(x6, x6, 3);
    b.add(x7, x6, x21);
    b.ldi(x4, NX - 2);
    b.label("cx");
    b.fld(f1, x7, 0);
    b.fmvXD(x9, f1);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);
    b.addi(x7, x7, 8);
    b.addi(x4, x4, -1);
    b.bne(x4, x0, "cx");
    b.addi(x3, x3, 1);
    b.ldi(x5, NY - 1);
    b.bne(x3, x5, "cy");
    b.addi(x2, x2, 1);
    b.ldi(x5, NZ - 1);
    b.bne(x2, x5, "cz");

    storeResultAndHalt(b, x31);

    // The stencil reads the x/y/z faces of the untouched grid, so the
    // reference must see the same zero-initialized ghost cells the
    // simulated memory provides -- both start from the same image.
    Workload w;
    w.name = "bwaves";
    w.description = "bwaves proxy: 7-point 3D stencil ping-pong";
    w.program = b.build();
    w.expectedResult = reference(grid, iters);
    w.fpHeavy = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
