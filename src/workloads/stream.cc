/**
 * @file
 * HPCC STREAM proxy (memory-bound; the paper's best case for
 * checkpoint overheads -- the load-store log fills quickly, so
 * checkpoints are short regardless of the AIMD target).
 *
 * The classic four kernels over double arrays a, b, c:
 *   copy:  c = a;  scale: b = s*c;  add: c = a+b;  triad: a = b+s*c
 * followed by a checksum fold of a and c.  Roughly one memory
 * operation per two committed instructions.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr double scaleFactor = 3.0;

std::uint64_t
reference(std::vector<double> a, std::size_t n)
{
    std::vector<double> b(n, 0.0), c(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        c[i] = a[i];
    for (std::size_t i = 0; i < n; ++i)
        b[i] = scaleFactor * c[i];
    for (std::size_t i = 0; i < n; ++i)
        c[i] = a[i] + b[i];
    for (std::size_t i = 0; i < n; ++i)
        a[i] = b[i] + scaleFactor * c[i];
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        acc = mixDouble(acc, a[i]);
        acc = mixDouble(acc, c[i]);
    }
    return acc;
}

} // namespace

Workload
buildStream(unsigned scale)
{
    const std::size_t n = 8192 * scale;
    const auto a = randomDoubles(n, 0x57e4a);

    const Addr aBase = dataBase;
    const Addr bBase = dataBase + n * 8;
    const Addr cBase = dataBase + 2 * n * 8;

    isa::ProgramBuilder b("stream");
    emitDataF(b, aBase, a);
    b.footprint(bBase, n * 8, "b");
    b.footprint(cBase, n * 8, "c");

    b.ldi(x20, n);                      // element count
    b.dataF64(0x7f000, scaleFactor);
    b.ldi(x1, 0x7f000);
    b.fld(f10, x1, 0);                  // s

    auto loop_header = [&](const char *name, Addr base1, Addr base2,
                           Addr base3) {
        b.ldi(x1, base1);
        b.ldi(x2, base2);
        if (base3)
            b.ldi(x3, base3);
        b.mv(x4, x20);
        b.label(name);
    };
    auto loop_footer = [&](const char *name, bool three) {
        b.addi(x1, x1, 8);
        b.addi(x2, x2, 8);
        if (three)
            b.addi(x3, x3, 8);
        b.addi(x4, x4, -1);
        b.bne(x4, x0, name);
    };

    // copy: c = a
    loop_header("copy", aBase, cBase, 0);
    b.fld(f1, x1, 0);
    b.fsd(f1, x2, 0);
    loop_footer("copy", false);

    // scale: b = s * c
    loop_header("scale", cBase, bBase, 0);
    b.fld(f1, x1, 0);
    b.fmul(f2, f10, f1);
    b.fsd(f2, x2, 0);
    loop_footer("scale", false);

    // add: c = a + b
    loop_header("add", aBase, bBase, cBase);
    b.fld(f1, x1, 0);
    b.fld(f2, x2, 0);
    b.fadd(f3, f1, f2);
    b.fsd(f3, x3, 0);
    loop_footer("add", true);

    // triad: a = b + s * c
    loop_header("triad", bBase, cBase, aBase);
    b.fld(f1, x1, 0);
    b.fld(f2, x2, 0);
    b.fmul(f3, f10, f2);
    b.fadd(f3, f1, f3);
    b.fsd(f3, x3, 0);
    loop_footer("triad", true);

    // checksum of a and c
    b.ldi(x31, 0);
    b.ldi(x21, 1099511628211ULL);
    loop_header("sum", aBase, cBase, 0);
    b.fld(f1, x1, 0);
    b.fmvXD(x5, f1);
    b.mul(x31, x31, x21);
    b.add(x31, x31, x5);
    b.fld(f2, x2, 0);
    b.fmvXD(x6, f2);
    b.mul(x31, x31, x21);
    b.add(x31, x31, x6);
    loop_footer("sum", false);

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "stream";
    w.description = "HPCC STREAM: copy/scale/add/triad over doubles";
    w.program = b.build();
    w.expectedResult = reference(a, n);
    w.fpHeavy = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
