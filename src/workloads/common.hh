/**
 * @file
 * Shared conventions and helpers for workload construction.
 *
 * Register conventions (by agreement, not hardware enforcement):
 * x1-x4 address/loop registers, x5-x15 temporaries, x28-x31
 * accumulators.  Every kernel ends by storing its checksum register
 * to workloads::resultAddr and halting.
 */

#ifndef PARADOX_WORKLOADS_COMMON_HH
#define PARADOX_WORKLOADS_COMMON_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "isa/builder.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace paradox
{
namespace workloads
{

/** @{ Conventional register names. */
constexpr isa::XReg x0{0}, x1{1}, x2{2}, x3{3}, x4{4}, x5{5}, x6{6},
    x7{7}, x8{8}, x9{9}, x10{10}, x11{11}, x12{12}, x13{13}, x14{14},
    x15{15}, x16{16}, x17{17}, x18{18}, x19{19}, x20{20}, x21{21},
    x22{22}, x28{28}, x29{29}, x30{30}, x31{31};
constexpr isa::FReg f0{0}, f1{1}, f2{2}, f3{3}, f4{4}, f5{5}, f6{6},
    f7{7}, f8{8}, f9{9}, f10{10}, f11{11}, f12{12}, f13{13}, f14{14},
    f15{15}, f28{28}, f29{29}, f30{30}, f31{31};
/** @} */

/** Base address of the first data array; leave room below. */
constexpr Addr dataBase = 0x100000;

/** Generate @p n pseudo-random 64-bit words from @p seed. */
inline std::vector<std::uint64_t>
randomWords(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> words(n);
    for (auto &word : words)
        word = rng.next();
    return words;
}

/** Generate @p n doubles in (-1, 1) from @p seed. */
inline std::vector<double>
randomDoubles(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> values(n);
    for (auto &value : values)
        value = rng.nextDouble() * 2.0 - 1.0;
    return values;
}

/** Emit @p words as 64-bit data cells starting at @p base. */
inline void
emitData(isa::ProgramBuilder &b, Addr base,
         const std::vector<std::uint64_t> &words)
{
    for (std::size_t i = 0; i < words.size(); ++i)
        b.data64(base + i * 8, words[i]);
}

/** Emit @p values as doubles starting at @p base. */
inline void
emitDataF(isa::ProgramBuilder &b, Addr base,
          const std::vector<double> &values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        b.dataF64(base + i * 8, values[i]);
}

/** Store checksum register @p acc to resultAddr and halt. */
inline void
storeResultAndHalt(isa::ProgramBuilder &b, isa::XReg acc)
{
    b.ldi(x1, resultAddr);
    b.sd(acc, x1, 0);
    b.halt();
}

/** Fold a double into a running 64-bit checksum (reference side). */
inline std::uint64_t
mixDouble(std::uint64_t acc, double v)
{
    return acc * 1099511628211ULL + std::bit_cast<std::uint64_t>(v);
}

/** Fold an integer into a running 64-bit checksum (reference side). */
inline std::uint64_t
mixInt(std::uint64_t acc, std::uint64_t v)
{
    return acc * 1099511628211ULL + v;
}

/** @{ Individual workload factories (one translation unit each). */
Workload buildBitcount(unsigned scale);
Workload buildStream(unsigned scale);
Workload buildBzip2(unsigned scale);
Workload buildBwaves(unsigned scale);
Workload buildGcc(unsigned scale);
Workload buildMcf(unsigned scale);
Workload buildMilc(unsigned scale);
Workload buildCactusADM(unsigned scale);
Workload buildLeslie3d(unsigned scale);
Workload buildNamd(unsigned scale);
Workload buildGobmk(unsigned scale);
Workload buildPovray(unsigned scale);
Workload buildCalculix(unsigned scale);
Workload buildSjeng(unsigned scale);
Workload buildGemsFDTD(unsigned scale);
Workload buildH264ref(unsigned scale);
Workload buildTonto(unsigned scale);
Workload buildLbm(unsigned scale);
Workload buildOmnetpp(unsigned scale);
Workload buildAstar(unsigned scale);
Workload buildXalancbmk(unsigned scale);
/** @} */

} // namespace workloads
} // namespace paradox

#endif // PARADOX_WORKLOADS_COMMON_HH
