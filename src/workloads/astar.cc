/**
 * @file
 * SPEC CPU2006 473.astar proxy: grid path-cost relaxation sweeps.
 * The distance grid uses a 4 KiB row pitch and is walked column-
 * major, so the unchecked-store buffer concentrates dirty lines in a
 * handful of L1 sets -- reproducing the buffered-write conflict
 * misses that make astar the EDP outlier of figure 13.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr long N = 64;           // grid dimension
constexpr long pitchBytes = 4096; // distance-grid row pitch

std::uint64_t
reference(const std::vector<std::uint64_t> &cost, unsigned sweeps)
{
    auto costAt = [&cost](long x, long y) {
        return (cost[std::size_t(y * N + x) / 8] >>
                (8 * (std::size_t(y * N + x) % 8))) & 0xff;
    };
    std::vector<std::uint64_t> dist(std::size_t(N * N),
                                    0x3fffffffffffffffULL);
    dist[0] = 0;
    std::uint64_t acc = 0;
    for (unsigned s = 0; s < sweeps; ++s) {
        // Column-major relaxation from the left/top neighbours.
        for (long x = 1; x < N; ++x) {
            for (long y = 1; y < N; ++y) {
                std::uint64_t left = dist[std::size_t(y * N + x - 1)];
                std::uint64_t up = dist[std::size_t((y - 1) * N + x)];
                std::uint64_t best = left < up ? left : up;
                std::uint64_t v = best + costAt(x, y) + s;
                if (v < dist[std::size_t(y * N + x)])
                    dist[std::size_t(y * N + x)] = v;
            }
        }
        acc = mixInt(acc, dist[std::size_t(N * N - 1)]);
    }
    return acc;
}

} // namespace

Workload
buildAstar(unsigned scale)
{
    const unsigned sweeps = 12 * scale;
    const auto cost = randomWords(std::size_t(N * N) / 8, 0xa57a4);
    const Addr costBase = dataBase;
    const Addr distBase = 0x400000;  // pitched: row y at + y*4096

    isa::ProgramBuilder b("astar");
    emitData(b, costBase, cost);
    b.footprint(distBase, (N - 1) * pitchBytes + N * 8, "dist");
    // Distance grid initialization: large sentinel everywhere, 0 at
    // the origin.  (Initialized by code so the pitched layout does
    // not blow up the data image.)

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, distBase);
    b.ldi(x22, costBase);
    b.ldi(x18, N);
    b.ldi(x19, 0x3fffffffffffffffULL);

    // init: for y, for x: dist[y][x] = sentinel; dist[0][0] = 0.
    b.ldi(x2, 0);
    b.label("iy");
    b.ldi(x5, pitchBytes);
    b.mul(x6, x2, x5);
    b.add(x6, x6, x21);
    b.ldi(x3, N);
    b.label("ix");
    b.sd(x19, x6, 0);
    b.addi(x6, x6, 8);
    b.addi(x3, x3, -1);
    b.bne(x3, x0, "ix");
    b.addi(x2, x2, 1);
    b.bne(x2, x18, "iy");
    b.sd(x0, x21, 0);

    b.ldi(x15, 0);                 // sweep counter s
    b.ldi(x16, sweeps);
    b.label("sweep");
    b.ldi(x2, 1);                  // x (column-major outer)
    b.label("xloop");
    b.ldi(x3, 1);                  // y
    b.label("yloop");
    // &dist[y][x] = distBase + y*pitch + x*8.
    b.ldi(x5, pitchBytes);
    b.mul(x6, x3, x5);
    b.add(x6, x6, x21);
    b.slli(x7, x2, 3);
    b.add(x6, x6, x7);
    b.ld(x8, x6, -8);              // left
    b.ldi(x5, pitchBytes);
    b.sub(x9, x6, x5);
    b.ld(x9, x9, 0);               // up
    b.bltu(x8, x9, "useleft");
    b.mv(x8, x9);
    b.label("useleft");
    // cost byte at y*N + x.
    b.mul(x10, x3, x18);
    b.add(x10, x10, x2);
    b.add(x10, x10, x22);
    b.lbu(x10, x10, 0);
    b.add(x8, x8, x10);
    b.add(x8, x8, x15);            // + s
    b.ld(x11, x6, 0);
    b.bgeu(x8, x11, "nokeep");
    b.sd(x8, x6, 0);
    b.label("nokeep");
    b.addi(x3, x3, 1);
    b.bne(x3, x18, "yloop");
    b.addi(x2, x2, 1);
    b.bne(x2, x18, "xloop");
    // Fold dist[N-1][N-1].
    b.ldi(x5, pitchBytes);
    b.ldi(x6, N - 1);
    b.mul(x5, x5, x6);
    b.add(x5, x5, x21);
    b.ld(x7, x5, (N - 1) * 8);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x7);
    b.addi(x15, x15, 1);
    b.bne(x15, x16, "sweep");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "astar";
    w.description = "astar proxy: pitched-grid path relaxation";
    w.program = b.build();
    w.expectedResult = reference(cost, sweeps);
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
