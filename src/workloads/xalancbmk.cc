/**
 * @file
 * SPEC CPU2006 483.xalancbmk proxy: XML-ish DOM traversal.  An
 * explicit-stack depth-first walk over a pointer-linked node tree,
 * hashing each node's name bytes with one of 48 unrolled hash
 * variants chosen by name length -- pointer chasing, byte loads and
 * a large branchy code footprint (a figure 10 I-cache-miss workload).
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

constexpr std::size_t numNodes = 600;
constexpr unsigned numVariants = 96;
constexpr unsigned nodeBytes = 32;  // firstChild, nextSibling, nameOfs, nameLen

struct Variant
{
    std::uint64_t mult;
    std::uint64_t xorc;
    unsigned rot;
    std::uint64_t pre1, pre2;  //!< constant pre-mix round
    unsigned preRot;
};

std::vector<Variant>
makeVariants(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Variant> variants(numVariants);
    for (auto &v : variants) {
        v.mult = 0x100000001b3ULL + 2 * rng.nextBounded(1 << 16);
        v.xorc = rng.next();
        v.rot = 1 + unsigned(rng.nextBounded(31));
        v.pre1 = rng.next();
        v.pre2 = 1 | rng.next();
        v.preRot = 1 + unsigned(rng.nextBounded(31));
    }
    return variants;
}

std::uint64_t rotl(std::uint64_t x, unsigned k);

/** Seed mix applied before the byte loop (mirrored in PDX64). */
std::uint64_t
variantSeed(const Variant &v, std::uint64_t wk)
{
    std::uint64_t h = v.xorc;
    h = (h ^ v.pre1) * v.pre2;
    h = rotl(h, v.preRot);
    h = h + wk;
    return h;
}

struct Tree
{
    std::vector<std::uint64_t> firstChild;  // node index + 1, 0 = none
    std::vector<std::uint64_t> nextSibling;
    std::vector<std::uint64_t> nameOfs;
    std::vector<std::uint64_t> nameLen;
    std::vector<std::uint64_t> nameWords;   // packed name bytes
};

Tree
makeTree(std::uint64_t seed)
{
    Rng rng(seed);
    Tree t;
    t.firstChild.assign(numNodes, 0);
    t.nextSibling.assign(numNodes, 0);
    t.nameOfs.resize(numNodes);
    t.nameLen.resize(numNodes);
    std::vector<std::uint8_t> bytes;
    // Random forest shape: node i's parent is a random earlier node.
    std::vector<std::size_t> lastChild(numNodes, 0);
    for (std::size_t i = 1; i < numNodes; ++i) {
        std::size_t parent = rng.nextBounded(i);
        if (t.firstChild[parent] == 0) {
            t.firstChild[parent] = i + 1;
        } else {
            t.nextSibling[lastChild[parent]] = i + 1;
        }
        lastChild[parent] = i;
    }
    for (std::size_t i = 0; i < numNodes; ++i) {
        std::size_t len = 3 + rng.nextBounded(12);
        t.nameOfs[i] = bytes.size();
        t.nameLen[i] = len;
        for (std::size_t k = 0; k < len; ++k)
            bytes.push_back(std::uint8_t('a' + rng.nextBounded(26)));
    }
    t.nameWords.assign((bytes.size() + 7) / 8, 0);
    for (std::size_t i = 0; i < bytes.size(); ++i)
        t.nameWords[i / 8] |= std::uint64_t(bytes[i]) << (8 * (i % 8));
    return t;
}

std::uint64_t
rotl(std::uint64_t x, unsigned k)
{
    return (x << k) | (x >> (64 - k));
}

std::uint64_t
reference(const Tree &t, const std::vector<Variant> &variants,
          unsigned walks)
{
    auto nameByte = [&t](std::uint64_t idx) {
        return (t.nameWords[idx / 8] >> (8 * (idx % 8))) & 0xff;
    };
    std::uint64_t acc = 0;
    for (unsigned wk = 0; wk < walks; ++wk) {
        std::vector<std::uint64_t> stack = {1};  // root handle
        while (!stack.empty()) {
            std::uint64_t handle = stack.back();
            stack.pop_back();
            std::size_t node = std::size_t(handle - 1);
            const Variant &v =
                variants[(t.nameLen[node] + wk) % numVariants];
            std::uint64_t h = variantSeed(v, wk);
            for (std::uint64_t k = 0; k < t.nameLen[node]; ++k) {
                h = (h ^ nameByte(t.nameOfs[node] + k)) * v.mult;
                h = rotl(h, v.rot);
            }
            acc = mixInt(acc, h);
            if (t.nextSibling[node])
                stack.push_back(t.nextSibling[node]);
            if (t.firstChild[node])
                stack.push_back(t.firstChild[node]);
        }
    }
    return acc;
}

} // namespace

Workload
buildXalancbmk(unsigned scale)
{
    const unsigned walks = 4 * scale;
    const auto tree = makeTree(0xa1a);
    const auto variants = makeVariants(0xa1b);

    const Addr nodeBase = dataBase;  // 32 B per node
    const Addr nameBase = nodeBase + numNodes * nodeBytes + 64;
    const Addr stackBase = 0x600000;

    isa::ProgramBuilder b("xalancbmk");
    b.footprint(stackBase, numNodes * 8, "walk-stack");
    for (std::size_t i = 0; i < numNodes; ++i) {
        b.data64(nodeBase + i * nodeBytes + 0, tree.firstChild[i]);
        b.data64(nodeBase + i * nodeBytes + 8, tree.nextSibling[i]);
        b.data64(nodeBase + i * nodeBytes + 16,
                 nameBase + tree.nameOfs[i]);
        b.data64(nodeBase + i * nodeBytes + 24, tree.nameLen[i]);
    }
    emitData(b, nameBase, tree.nameWords);

    b.ldi(x31, 0);
    b.ldi(x20, 1099511628211ULL);
    b.ldi(x21, nodeBase);
    b.ldi(x22, stackBase);
    b.ldi(x19, numVariants);
    b.ldi(x15, 0);                 // walk counter
    b.ldi(x16, walks);

    b.label("walk");
    // stack = [1]
    b.ldi(x5, 1);
    b.sd(x5, x22, 0);
    b.ldi(x2, 1);                  // stack depth

    b.label("pop");
    b.beq(x2, x0, "walk_done");
    b.addi(x2, x2, -1);
    b.slli(x5, x2, 3);
    b.add(x5, x5, x22);
    b.ld(x3, x5, 0);               // handle
    b.addi(x3, x3, -1);            // node index
    b.ldi(x5, nodeBytes);
    b.mul(x3, x3, x5);
    b.add(x3, x3, x21);            // &node

    b.ld(x6, x3, 16);              // name pointer
    b.ld(x7, x3, 24);              // name length
    // variant index = (len + wk) % numVariants.
    b.add(x8, x7, x15);
    b.remu(x8, x8, x19);

    for (unsigned v = 0; v < numVariants; ++v) {
        const std::string lbl = "v_" + std::to_string(v);
        b.ldi(x9, v);
        b.beq(x8, x9, lbl);
    }
    b.j("v_0");
    for (unsigned v = 0; v < numVariants; ++v) {
        const Variant &var = variants[v];
        b.label("v_" + std::to_string(v));
        // Constant pre-mix (variantSeed in the reference).
        b.ldi(x9, var.xorc);
        b.ldi(x13, var.pre1);
        b.xor_(x9, x9, x13);
        b.ldi(x13, var.pre2);
        b.mul(x9, x9, x13);
        b.slli(x13, x9, var.preRot);
        b.srli(x9, x9, 64 - var.preRot);
        b.or_(x9, x9, x13);
        b.add(x9, x9, x15);        // + walk index
        b.mv(x10, x6);             // byte ptr
        b.mv(x11, x7);             // remaining
        const std::string loop = "vl_" + std::to_string(v);
        const std::string done = "vd_" + std::to_string(v);
        b.label(loop);
        b.beq(x11, x0, done);
        b.lbu(x12, x10, 0);
        b.xor_(x9, x9, x12);
        b.ldi(x13, var.mult);
        b.mul(x9, x9, x13);
        b.slli(x13, x9, var.rot);
        b.srli(x9, x9, 64 - var.rot);
        b.or_(x9, x9, x13);
        b.addi(x10, x10, 1);
        b.addi(x11, x11, -1);
        b.j(loop);
        b.label(done);
        b.j("hashed");
    }
    b.label("hashed");

    b.mul(x31, x31, x20);
    b.add(x31, x31, x9);

    // Push nextSibling then firstChild (if present).
    b.ld(x6, x3, 8);
    b.beq(x6, x0, "nosib");
    b.slli(x5, x2, 3);
    b.add(x5, x5, x22);
    b.sd(x6, x5, 0);
    b.addi(x2, x2, 1);
    b.label("nosib");
    b.ld(x6, x3, 0);
    b.beq(x6, x0, "nochild");
    b.slli(x5, x2, 3);
    b.add(x5, x5, x22);
    b.sd(x6, x5, 0);
    b.addi(x2, x2, 1);
    b.label("nochild");
    b.j("pop");

    b.label("walk_done");
    b.addi(x15, x15, 1);
    b.bne(x15, x16, "walk");

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "xalancbmk";
    w.description = "xalancbmk proxy: DOM walk with variant string "
                    "hashing";
    w.program = b.build();
    w.expectedResult = reference(tree, variants, walks);
    w.largeCode = true;
    w.memoryBound = true;
    return w;
}

} // namespace workloads
} // namespace paradox
