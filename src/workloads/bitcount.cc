/**
 * @file
 * MiBench bitcount proxy (compute-bound; the paper's worst case for
 * overly long checkpoints, figures 8, 9 and 11).
 *
 * For each input word the kernel runs two counting strategies --
 * Kernighan's data-dependent clear-lowest-bit loop, and a branchless
 * SWAR popcount -- and folds both results into an FNV-style checksum.
 * Almost no memory traffic: one load per ~150 committed instructions,
 * so checkpoints are bounded by the AIMD target, not log capacity.
 */

#include "workloads/common.hh"

namespace paradox
{
namespace workloads
{

namespace
{

std::uint64_t
reference(const std::vector<std::uint64_t> &words)
{
    std::uint64_t acc = 0;
    std::vector<std::uint64_t> counts(words.size(), 0);
    std::size_t i = 0;
    for (std::uint64_t w : words) {
        // Kernighan.
        std::uint64_t kern = 0;
        for (std::uint64_t v = w; v != 0; v &= v - 1)
            ++kern;
        // SWAR.
        std::uint64_t x = w;
        x = x - ((x >> 1) & 0x5555555555555555ULL);
        x = (x & 0x3333333333333333ULL) +
            ((x >> 2) & 0x3333333333333333ULL);
        x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
        std::uint64_t swar = (x * 0x0101010101010101ULL) >> 56;
        counts[i++] = kern + 3 * swar;  // per-word result table
        acc = mixInt(acc, kern + 3 * swar);
    }
    return mixInt(acc, counts[words.size() / 2]);
}

} // namespace

Workload
buildBitcount(unsigned scale)
{
    const std::size_t n = 2048 * scale;
    const auto words = randomWords(n, 0xb17c0417);

    isa::ProgramBuilder b("bitcount");
    emitData(b, dataBase, words);
    const Addr countBase = dataBase + n * 8 + 64;
    b.footprint(countBase, n * 8, "counts");

    b.ldi(x1, dataBase);
    b.ldi(x2, countBase);
    b.ldi(x3, n);
    b.ldi(x31, 0);                          // checksum accumulator
    b.ldi(x20, 1099511628211ULL);           // FNV prime
    b.ldi(x16, 0x5555555555555555ULL);
    b.ldi(x17, 0x3333333333333333ULL);
    b.ldi(x18, 0x0f0f0f0f0f0f0f0fULL);
    b.ldi(x19, 0x0101010101010101ULL);

    b.label("word");
    b.ld(x5, x1, 0);                        // w

    // Kernighan count into x7.
    b.mv(x6, x5);
    b.ldi(x7, 0);
    b.label("kern");
    b.beq(x6, x0, "kern_done");
    b.addi(x8, x6, -1);
    b.and_(x6, x6, x8);
    b.addi(x7, x7, 1);
    b.j("kern");
    b.label("kern_done");

    // SWAR count into x9.
    b.srli(x9, x5, 1);
    b.and_(x9, x9, x16);
    b.sub(x9, x5, x9);
    b.and_(x10, x9, x17);
    b.srli(x9, x9, 2);
    b.and_(x9, x9, x17);
    b.add(x9, x9, x10);
    b.srli(x10, x9, 4);
    b.add(x9, x9, x10);
    b.and_(x9, x9, x18);
    b.mul(x9, x9, x19);
    b.srli(x9, x9, 56);

    // counts[i] = kern + 3 * swar; acc = acc * prime + counts[i].
    b.slli(x10, x9, 1);
    b.add(x10, x10, x9);
    b.add(x10, x10, x7);
    b.sd(x10, x2, 0);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x10);

    b.addi(x1, x1, 8);
    b.addi(x2, x2, 8);
    b.addi(x3, x3, -1);
    b.bne(x3, x0, "word");

    // Fold one table entry back in, so the stores are live outputs.
    b.ldi(x2, countBase + (n / 2) * 8);
    b.ld(x10, x2, 0);
    b.mul(x31, x31, x20);
    b.add(x31, x31, x10);

    storeResultAndHalt(b, x31);

    Workload w;
    w.name = "bitcount";
    w.description = "MiBench bitcount: dual-strategy population counts";
    w.program = b.build();
    w.expectedResult = reference(words);
    w.fpHeavy = false;
    w.memoryBound = false;
    return w;
}

} // namespace workloads
} // namespace paradox
