#include "cpu/main_core.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "sim/logging.hh"

namespace paradox
{
namespace cpu
{

MainCore::MainCore(const MainCoreParams &params, ClockDomain &clock,
                   mem::CacheHierarchy &hierarchy)
    : params_(params), clock_(clock), hierarchy_(hierarchy),
      predictor_(params.predictor)
{
    regReadyX_.assign(isa::numIntRegs, 0);
    regReadyF_.assign(isa::numFpRegs, 0);
    robRing_.assign(params_.robEntries, 0);
    iqRing_.assign(params_.iqEntries, 0);
    lqRing_.assign(params_.lqEntries, 0);
    sqRing_.assign(params_.sqEntries, 0);
    intAluBusy_.assign(params_.intAlus, 0);
    fpAluBusy_.assign(params_.fpAlus, 0);
    multDivBusy_.assign(params_.multDivAlus, 0);
}

Tick
MainCore::sourceReady(const isa::CommitRecord &r) const
{
    // The per-opcode operand roles are resolved at decode time
    // (isa::decodeSources); here the scoreboard just walks the
    // encoded sources.
    Tick ready = 0;
    const std::uint8_t srcs[3] = {r.srcA, r.srcB, r.srcC};
    for (std::uint8_t s : srcs) {
        if (s == isa::srcNone)
            continue;
        const Tick t = isa::srcIsFp(s) ? regReadyF_[isa::srcIdx(s)]
                                       : regReadyX_[isa::srcIdx(s)];
        ready = std::max(ready, t);
    }
    return ready;
}

Tick
MainCore::useFu(std::vector<Tick> &group, Tick ready, unsigned latency,
                bool pipelined)
{
    auto slot = std::min_element(group.begin(), group.end());
    Tick start = std::max(ready, *slot);
    Tick complete = start + cycles(latency);
    // Pipelined units accept a new op next cycle; unpipelined ones
    // (dividers) block until completion.
    *slot = pipelined ? start + cycles(1) : complete;
    return complete;
}

CommitTiming
MainCore::advance(const isa::CommitRecord &r, Addr fetch_pc,
                  Addr mem_addr, Addr next_pc, std::uint64_t pin_seg,
                  std::uint64_t stamp)
{
    CommitTiming timing;

    // ---- Fetch ----------------------------------------------------
    Tick fetch_start = std::max(fetchReadyAt_, nextFetchSlot_);
    Tick fetch_done;
    {
        PARADOX_PROF_SCOPE("mem");
        fetch_done = hierarchy_.instFetch(fetch_pc, fetch_start);
    }
    // Bandwidth: 'width' sequential fetches per cycle; an I-cache
    // miss additionally holds the in-order frontend.
    nextFetchSlot_ = std::max(fetch_start + slotTicks(),
                              fetch_done - cycles(1));

    // ---- Decode / rename ------------------------------------------
    Tick dispatch = fetch_done + cycles(params_.frontendCycles);

    // ---- Structural occupancy (ROB/IQ/LQ/SQ rings) -----------------
    dispatch = std::max(dispatch, robRing_[robHead_]);
    dispatch = std::max(dispatch, iqRing_[iqHead_]);
    if (r.isLoad)
        dispatch = std::max(dispatch, lqRing_[lqHead_]);
    if (r.isStore)
        dispatch = std::max(dispatch, sqRing_[sqHead_]);

    // ---- Operand readiness ----------------------------------------
    Tick ready = std::max(dispatch, sourceReady(r));

    // ---- Issue + execute ------------------------------------------
    Tick complete = ready;
    bool is_mem = r.isLoad || r.isStore;
    if (is_mem) {
        Tick issue = ready;
        if (r.isLoad) {
            PARADOX_PROF_SCOPE("mem");
            for (;;) {
                auto d = hierarchy_.dataAccess(mem_addr, fetch_pc, false,
                                               issue, mem::noPin, stamp);
                if (!d.blockedPinned) {
                    complete = d.completeAt;
                    timing.l1dHit = d.l1Hit;
                    break;
                }
                if (!resolver_)
                    panic("MainCore: pinned stall without resolver");
                issue = resolver_(issue);
            }
        } else {
            // Stores complete at issue (into the SQ) and access the
            // cache at commit time, below.
            complete = issue + cycles(1);
        }
    } else {
        switch (r.cls) {
          case isa::InstClass::IntAlu:
            complete = useFu(intAluBusy_, ready, params_.intAluLat, true);
            break;
          case isa::InstClass::IntMult:
            complete = useFu(multDivBusy_, ready, params_.intMultLat,
                             true);
            break;
          case isa::InstClass::IntDiv:
            complete = useFu(multDivBusy_, ready, params_.intDivLat,
                             false);
            break;
          case isa::InstClass::FpAlu:
            complete = useFu(fpAluBusy_, ready, params_.fpAluLat, true);
            break;
          case isa::InstClass::FpMult:
            complete = useFu(multDivBusy_, ready, params_.fpMultLat,
                             true);
            break;
          case isa::InstClass::FpDiv:
            complete = useFu(multDivBusy_, ready, params_.fpDivLat,
                             false);
            break;
          case isa::InstClass::Branch:
          case isa::InstClass::Jump:
            complete = useFu(intAluBusy_, ready, params_.intAluLat, true);
            break;
          default:
            complete = ready + cycles(1);
            break;
        }
    }

    // ---- Branch resolution ----------------------------------------
    if (r.isBranch || r.isJump) {
        PARADOX_PROF_SCOPE("bpred");
        predictor_.predict(fetch_pc, *r.inst);
        const bool actually_taken = r.isJump ? true : r.taken;
        const bool miss =
            predictor_.update(fetch_pc, *r.inst, actually_taken,
                              next_pc);
        if (miss) {
            timing.mispredicted = true;
            ++mispredicts_;
            Tick redirect = complete + cycles(params_.redirectCycles);
            fetchReadyAt_ = std::max(fetchReadyAt_, redirect);
            nextFetchSlot_ = std::max(nextFetchSlot_, redirect);
        }
    }

    // ---- Commit (in order, width-limited) --------------------------
    Tick commit = std::max(complete, nextCommitSlot_);
    commit = std::max(commit, lastCommit_);
    nextCommitSlot_ = commit + slotTicks();
    lastCommit_ = commit;
    ++committed_;

    // ---- Stores hit the cache at commit ----------------------------
    if (r.isStore) {
        PARADOX_PROF_SCOPE("mem");
        Tick at = commit;
        for (;;) {
            auto d = hierarchy_.dataAccess(mem_addr, fetch_pc, true, at,
                                           pin_seg, stamp);
            if (!d.blockedPinned) {
                timing.l1dHit = d.l1Hit;
                timing.needsLineCopy = d.needsLineCopy;
                break;
            }
            if (!resolver_)
                panic("MainCore: pinned stall without resolver");
            at = resolver_(at);
            // The stall delays this commit and everything younger.
            commit = std::max(commit, at);
            lastCommit_ = std::max(lastCommit_, commit);
            nextCommitSlot_ = std::max(nextCommitSlot_,
                                       commit + slotTicks());
        }
    }

    // ---- Scoreboard updates ----------------------------------------
    if (r.wroteInt)
        regReadyX_[r.rd] = complete;
    if (r.wroteFp)
        regReadyF_[r.rd] = complete;

    robRing_[robHead_] = commit;
    if (++robHead_ == robRing_.size())
        robHead_ = 0;
    iqRing_[iqHead_] = complete;
    if (++iqHead_ == iqRing_.size())
        iqHead_ = 0;
    if (r.isLoad) {
        lqRing_[lqHead_] = commit;
        if (++lqHead_ == lqRing_.size())
            lqHead_ = 0;
    }
    if (r.isStore) {
        sqRing_[sqHead_] = commit;
        if (++sqHead_ == sqRing_.size())
            sqHead_ = 0;
    }

    timing.commitAt = commit;
    return timing;
}

void
MainCore::stallUntil(Tick t)
{
    if (t <= lastCommit_)
        return;
    lastCommit_ = t;
    nextCommitSlot_ = std::max(nextCommitSlot_, t);
    fetchReadyAt_ = std::max(fetchReadyAt_, t);
    nextFetchSlot_ = std::max(nextFetchSlot_, t);
}

void
MainCore::blockCommit(Cycles n)
{
    Tick block = cycles(unsigned(n));
    nextCommitSlot_ = std::max(nextCommitSlot_, lastCommit_) + block;
    lastCommit_ += block;
}

void
MainCore::resetPipeline(Tick at)
{
    fetchReadyAt_ = at;
    nextFetchSlot_ = at;
    nextCommitSlot_ = at;
    lastCommit_ = at;
    std::fill(regReadyX_.begin(), regReadyX_.end(), at);
    std::fill(regReadyF_.begin(), regReadyF_.end(), at);
    std::fill(robRing_.begin(), robRing_.end(), at);
    std::fill(iqRing_.begin(), iqRing_.end(), at);
    std::fill(lqRing_.begin(), lqRing_.end(), at);
    std::fill(sqRing_.begin(), sqRing_.end(), at);
    std::fill(intAluBusy_.begin(), intAluBusy_.end(), at);
    std::fill(fpAluBusy_.begin(), fpAluBusy_.end(), at);
    std::fill(multDivBusy_.begin(), multDivBusy_.end(), at);
}

} // namespace cpu
} // namespace paradox
