#include "cpu/branch_pred.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace cpu
{

namespace
{

unsigned
tableMask(unsigned entries, const char *what)
{
    if (entries == 0 || (entries & (entries - 1)) != 0)
        fatal(std::string("TournamentPredictor: ") + what +
              " must be a power of two");
    return entries - 1;
}

} // namespace

TournamentPredictor::TournamentPredictor(const Params &params)
    : params_(params)
{
    localMask_ = tableMask(params_.localEntries, "localEntries");
    globalMask_ = tableMask(params_.globalEntries, "globalEntries");
    chooserMask_ = tableMask(params_.chooserEntries, "chooserEntries");
    btbMask_ = tableMask(params_.btbEntries, "btbEntries");
    rasMask_ = tableMask(params_.rasEntries, "rasEntries");
    localHistory_.assign(params_.localEntries, 0);
    localCounters_.assign(params_.localEntries, 3);  // weakly not-taken
    globalCounters_.assign(params_.globalEntries, 1);
    chooser_.assign(params_.chooserEntries, 1);
    btb_.assign(params_.btbEntries, BtbEntry{});
    ras_.assign(params_.rasEntries, 0);
}

void
TournamentPredictor::reset()
{
    *this = TournamentPredictor(params_);
}

bool
TournamentPredictor::counterTaken(std::uint8_t c, std::uint8_t max)
{
    return c > max / 2;
}

void
TournamentPredictor::train(std::uint8_t &c, bool taken, std::uint8_t max)
{
    if (taken) {
        if (c < max)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

unsigned
TournamentPredictor::localIndex(Addr pc) const
{
    return (pc / isa::instBytes) & localMask_;
}

unsigned
TournamentPredictor::globalIndex() const
{
    return globalHistory_ & globalMask_;
}

unsigned
TournamentPredictor::chooserIndex(Addr pc) const
{
    return (pc / isa::instBytes) & chooserMask_;
}

unsigned
TournamentPredictor::btbIndex(Addr pc) const
{
    return (pc / isa::instBytes) & btbMask_;
}

bool
TournamentPredictor::isCall(const isa::Instruction &inst) const
{
    // A jump that records a return address is a call.
    return (inst.op == isa::Opcode::JAL ||
            inst.op == isa::Opcode::JALR) && inst.rd != 0;
}

bool
TournamentPredictor::isReturn(const isa::Instruction &inst) const
{
    // Indirect jump without a link register is a return.
    return inst.op == isa::Opcode::JALR && inst.rd == 0;
}

TournamentPredictor::Prediction
TournamentPredictor::predict(Addr pc, const isa::Instruction &inst)
{
    ++lookups_;
    Prediction pred;
    const isa::InstInfo &ii = inst.info();

    if (ii.isJump) {
        pred.taken = true;
        if (isReturn(inst) && rasTop_ > 0) {
            pred.target = ras_[(rasTop_ - 1) & rasMask_];
            pred.targetKnown = true;
            --rasTop_;
        } else {
            const BtbEntry &entry = btb_[btbIndex(pc)];
            if (entry.valid && entry.pc == pc) {
                pred.target = entry.target;
                pred.targetKnown = true;
            }
        }
        if (isCall(inst)) {
            ras_[rasTop_ & rasMask_] = pc + isa::instBytes;
            ++rasTop_;
        }
    } else if (ii.isBranch) {
        const unsigned li = localIndex(pc);
        const std::uint16_t hist = localHistory_[li];
        const bool local_taken = counterTaken(
            localCounters_[hist & localMask_], 7);
        const bool global_taken =
            counterTaken(globalCounters_[globalIndex()], 3);
        lastChoseGlobal_ = counterTaken(chooser_[chooserIndex(pc)], 3);
        pred.taken = lastChoseGlobal_ ? global_taken : local_taken;
        if (pred.taken) {
            const BtbEntry &entry = btb_[btbIndex(pc)];
            if (entry.valid && entry.pc == pc) {
                pred.target = entry.target;
                pred.targetKnown = true;
            }
        }
    }

    lastPrediction_ = pred;
    return pred;
}

bool
TournamentPredictor::update(Addr pc, const isa::Instruction &inst,
                            bool taken, Addr target)
{
    const isa::InstInfo &ii = inst.info();
    bool mispredicted = false;

    if (ii.isBranch) {
        const unsigned li = localIndex(pc);
        const std::uint16_t hist = localHistory_[li];
        std::uint8_t &local_ctr =
            localCounters_[hist & localMask_];
        std::uint8_t &global_ctr = globalCounters_[globalIndex()];
        const bool local_taken = counterTaken(local_ctr, 7);
        const bool global_taken = counterTaken(global_ctr, 3);

        // Chooser trains toward whichever component was right.
        if (local_taken != global_taken) {
            train(chooser_[chooserIndex(pc)], global_taken == taken, 3);
        }
        train(local_ctr, taken, 7);
        train(global_ctr, taken, 3);

        const std::uint16_t mask =
            (std::uint16_t(1) << params_.localHistoryBits) - 1;
        localHistory_[li] =
            std::uint16_t(((hist << 1) | (taken ? 1 : 0)) & mask);
        globalHistory_ = ((globalHistory_ << 1) | (taken ? 1 : 0)) &
                         ((std::uint64_t(1) << params_.globalHistoryBits)
                          - 1);

        mispredicted = lastPrediction_.taken != taken ||
                       (taken && (!lastPrediction_.targetKnown ||
                                  lastPrediction_.target != target));
    } else if (ii.isJump) {
        mispredicted = !lastPrediction_.targetKnown ||
                       lastPrediction_.target != target;
    }

    if ((ii.isBranch && taken) || ii.isJump) {
        BtbEntry &entry = btb_[btbIndex(pc)];
        entry.valid = true;
        entry.pc = pc;
        entry.target = target;
    }

    if (mispredicted)
        ++mispredicts_;
    return mispredicted;
}

} // namespace cpu
} // namespace paradox
