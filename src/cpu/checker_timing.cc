#include "cpu/checker_timing.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace cpu
{

CheckerTiming::CheckerTiming(const CheckerParams &params)
    : params_(params), clock_(params.freqHz)
{
    for (unsigned i = 0; i < params_.count; ++i) {
        mem::CacheParams l0;
        l0.name = "checker.l0i";
        l0.sizeBytes = params_.l0Bytes;
        l0.assoc = params_.l0Assoc;
        l0.hitCycles = params_.l0HitCycles;
        l0.mshrs = 1;
        l0_.push_back(std::make_unique<mem::Cache>(l0));
    }
    mem::CacheParams l1;
    l1.name = "checker.sharedl1i";
    l1.sizeBytes = params_.sharedL1Bytes;
    l1.assoc = params_.sharedL1Assoc;
    l1.hitCycles = params_.sharedL1Cycles;
    l1.mshrs = 4;
    sharedL1_ = std::make_unique<mem::Cache>(l1);
}

Cycles
CheckerTiming::instCycles(unsigned id, Addr pc,
                          const isa::Instruction &inst)
{
    if (id >= l0_.size())
        panic("CheckerTiming: checker id out of range");

    ++lruClock_;
    Cycles cycles = 0;

    // Fetch: private L0, then the shared L1, then the main L2 path.
    auto l0r = l0_[id]->access(pc, false, lruClock_);
    if (l0r.outcome != mem::CacheOutcome::Hit) {
        auto l1r = sharedL1_->access(pc, false, lruClock_);
        cycles += params_.sharedL1Cycles;
        if (l1r.outcome != mem::CacheOutcome::Hit)
            cycles += params_.missCycles;
    }

    // Execute: one cycle base; long latencies stall the in-order pipe.
    const isa::InstInfo &ii = inst.info();
    unsigned exec;
    switch (ii.cls) {
      case isa::InstClass::IntAlu:
        exec = params_.intAluLat;
        break;
      case isa::InstClass::Branch:
      case isa::InstClass::Jump:
        exec = params_.intAluLat + params_.branchExtraLat;
        break;
      case isa::InstClass::IntMult:
        exec = params_.intMultLat;
        break;
      case isa::InstClass::IntDiv:
        exec = params_.intDivLat;
        break;
      case isa::InstClass::FpAlu:
        exec = params_.fpAluLat;
        break;
      case isa::InstClass::FpMult:
        exec = params_.fpMultLat;
        break;
      case isa::InstClass::FpDiv:
        exec = params_.fpDivLat;
        break;
      case isa::InstClass::Load:
      case isa::InstClass::Store:
        exec = params_.logAccessLat;
        break;
      default:
        exec = 1;
        break;
    }
    return cycles + exec;
}

void
CheckerTiming::powerGated(unsigned id)
{
    if (id < l0_.size())
        l0_[id]->invalidateAll();
}

std::uint64_t
CheckerTiming::l0Misses() const
{
    std::uint64_t total = 0;
    for (const auto &cache : l0_)
        total += cache->misses();
    return total;
}

void
CheckerTiming::reset()
{
    for (auto &cache : l0_)
        cache->invalidateAll();
    sharedL1_->invalidateAll();
}

} // namespace cpu
} // namespace paradox
