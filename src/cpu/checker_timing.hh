/**
 * @file
 * Timing model of the checker cores (Table I: 16 in-order 4-stage
 * cores at 1 GHz, 8 KiB L0 I-cache per core, 32 KiB shared L1
 * I-cache; data comes from the load-store log, not a cache).
 *
 * A checker core retires at most one instruction per cycle; long ops
 * (its narrow divider especially, section IV-C) stall the pipe for
 * their full latency.  Instruction fetch goes through the core's
 * private L0 and the shared L1; workloads with large code footprints
 * (gobmk, povray, h264ref, omnetpp, xalancbmk in figure 10) miss in
 * the 8 KiB L0 and pay for it here.  Power-gating a checker core
 * flushes its L0, so waking it starts cold.
 */

#ifndef PARADOX_CPU_CHECKER_TIMING_HH
#define PARADOX_CPU_CHECKER_TIMING_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "isa/instruction.hh"
#include "mem/cache.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace paradox
{
namespace cpu
{

/** Structural and latency parameters of the checker complex. */
struct CheckerParams
{
    unsigned count = 16;           //!< checker cores per main core
    double freqHz = 1e9;

    unsigned l0Bytes = 8 * 1024;
    unsigned l0Assoc = 1;   //!< direct-mapped: tiny-core reality
    unsigned l0HitCycles = 1;
    unsigned sharedL1Bytes = 32 * 1024;
    unsigned sharedL1Assoc = 4;
    unsigned sharedL1Cycles = 4;   //!< extra cycles on an L0 miss
    unsigned missCycles = 24;      //!< extra cycles beyond shared L1

    unsigned intAluLat = 1;
    unsigned intMultLat = 4;
    unsigned intDivLat = 24;       //!< proportionally slower than main
    unsigned fpAluLat = 2;   //!< pipelined: stall only on use
    unsigned fpMultLat = 3;
    unsigned fpDivLat = 32;
    unsigned logAccessLat = 1;     //!< load-store-log SRAM access
    /** Taken-control-flow refetch bubble: the 4-stage in-order pipe
     * has no branch predictor, so redirects cost extra cycles.  This
     * sizes per-checker throughput so that, as in ParaMedic, on the
     * order of a dozen checkers are needed to match the main core. */
    unsigned branchExtraLat = 2;
};

/**
 * Cycle accounting for checker-core execution.
 *
 * Stateless with respect to scheduling: core/ decides *which* checker
 * runs a segment and *when*; this model answers "how many checker
 * cycles does this instruction cost on checker @p id".
 */
class CheckerTiming
{
  public:
    CheckerTiming() : CheckerTiming(CheckerParams{}) {}
    explicit CheckerTiming(const CheckerParams &params);

    /** Cycles checker @p id spends on @p inst fetched from @p pc. */
    Cycles instCycles(unsigned id, Addr pc, const isa::Instruction &inst);

    /** Power gating flushed checker @p id's L0 I-cache. */
    void powerGated(unsigned id);

    /** The checker clock (1 GHz). */
    const ClockDomain &clock() const { return clock_; }

    /** Convert checker cycles to ticks. */
    Tick cyclesToTicks(Cycles n) const { return clock_.cyclesToTicks(n); }

    const CheckerParams &params() const { return params_; }

    /** @{ Aggregate I-cache statistics across all checkers. */
    std::uint64_t l0Misses() const;
    std::uint64_t sharedL1Misses() const { return sharedL1_->misses(); }
    /** @} */

    /** Drop all cache state (between independent runs). */
    void reset();

  private:
    CheckerParams params_;
    ClockDomain clock_;
    std::vector<std::unique_ptr<mem::Cache>> l0_;
    std::unique_ptr<mem::Cache> sharedL1_;
    Tick lruClock_ = 0;  //!< synthetic time for cache LRU ordering
};

} // namespace cpu
} // namespace paradox

#endif // PARADOX_CPU_CHECKER_TIMING_HH
