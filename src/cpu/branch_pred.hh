/**
 * @file
 * Tournament branch predictor (Table I): 2048-entry local predictor,
 * 8192-entry global predictor, 2048-entry chooser, 2048-entry BTB and
 * a 16-entry return-address stack.
 */

#ifndef PARADOX_CPU_BRANCH_PRED_HH
#define PARADOX_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "isa/instruction.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace paradox
{
namespace cpu
{

/** Alpha-21264-style tournament predictor. */
class TournamentPredictor
{
  public:
    struct Params
    {
        unsigned localEntries = 2048;   //!< local history + counters
        unsigned globalEntries = 8192;  //!< global 2-bit counters
        unsigned chooserEntries = 2048; //!< 2-bit chooser counters
        unsigned btbEntries = 2048;
        unsigned rasEntries = 16;
        unsigned localHistoryBits = 11;
        unsigned globalHistoryBits = 13;
    };

    TournamentPredictor() : TournamentPredictor(Params{}) {}
    explicit TournamentPredictor(const Params &params);

    /** One direction/target prediction. */
    struct Prediction
    {
        bool taken = false;
        Addr target = 0;
        bool targetKnown = false;  //!< BTB or RAS supplied a target
    };

    /**
     * Predict the instruction at @p pc.  Jumps predict taken; their
     * targets come from the RAS (returns) or BTB (everything else).
     */
    Prediction predict(Addr pc, const isa::Instruction &inst);

    /**
     * Train with the resolved outcome and repair speculative state.
     * @return true if the prediction was wrong (direction or target).
     */
    bool update(Addr pc, const isa::Instruction &inst, bool taken,
                Addr target);

    /** @{ Statistics. */
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    /** @} */

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("lookups", "predictor lookups",
                            [this] { return double(lookups_); });
        g.add<stats::Gauge>("mispredicts", "mispredicted branches",
                            [this] { return double(mispredicts_); });
    }

    /** Drop all learned state. */
    void reset();

  private:
    static bool counterTaken(std::uint8_t c, std::uint8_t max);
    static void train(std::uint8_t &c, bool taken, std::uint8_t max);

    unsigned localIndex(Addr pc) const;
    unsigned globalIndex() const;
    unsigned chooserIndex(Addr pc) const;
    unsigned btbIndex(Addr pc) const;

    bool isCall(const isa::Instruction &inst) const;
    bool isReturn(const isa::Instruction &inst) const;

    Params params_;
    /** Table sizes are power-of-two (checked in the ctor), so the
     *  per-lookup index math is a mask, not a runtime modulo. */
    unsigned localMask_ = 0;
    unsigned globalMask_ = 0;
    unsigned chooserMask_ = 0;
    unsigned btbMask_ = 0;
    unsigned rasMask_ = 0;
    std::vector<std::uint16_t> localHistory_;
    std::vector<std::uint8_t> localCounters_;   //!< 3-bit
    std::vector<std::uint8_t> globalCounters_;  //!< 2-bit
    std::vector<std::uint8_t> chooser_;         //!< 2-bit
    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb_;
    std::vector<Addr> ras_;
    std::size_t rasTop_ = 0;
    std::uint64_t globalHistory_ = 0;

    // Saved at predict() for the matching update().
    Prediction lastPrediction_;
    bool lastChoseGlobal_ = false;

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace cpu
} // namespace paradox

#endif // PARADOX_CPU_BRANCH_PRED_HH
