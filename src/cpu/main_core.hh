/**
 * @file
 * Timing model of the out-of-order superscalar main core (Table I:
 * 3-wide, 40-entry ROB, 32-entry IQ, 16-entry LQ/SQ, 3 int ALUs,
 * 2 FP ALUs, 1 mult/div ALU, tournament predictor, 3.2 GHz).
 *
 * The model is an instruction-granularity out-of-order approximation:
 * each committed instruction flows through fetch (bandwidth-limited,
 * through the real L1I), a fixed-depth frontend, dispatch (bounded by
 * ROB/IQ/LQ/SQ occupancy rings), issue (operand ready-times + FU
 * availability), execution (class latencies; memory through the real
 * hierarchy), and in-order, width-limited commit.  Branches train the
 * real tournament predictor and redirect fetch on a mispredict.  This
 * captures the relative main-vs-checker throughput, cache, and stall
 * behaviour the ParaDox evaluation depends on, without simulating a
 * full wrong-path pipeline.
 */

#ifndef PARADOX_CPU_MAIN_CORE_HH
#define PARADOX_CPU_MAIN_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cpu/branch_pred.hh"
#include "isa/engine.hh"
#include "mem/hierarchy.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace paradox
{
namespace cpu
{

/** Structural and latency parameters of the main core. */
struct MainCoreParams
{
    unsigned width = 3;            //!< fetch/commit width
    unsigned robEntries = 40;
    unsigned iqEntries = 32;
    unsigned lqEntries = 16;
    unsigned sqEntries = 16;
    unsigned intAlus = 3;
    unsigned fpAlus = 2;
    unsigned multDivAlus = 1;      //!< shared int/FP mult+div unit
    unsigned frontendCycles = 6;   //!< decode/rename depth
    unsigned redirectCycles = 2;   //!< extra cycles on a mispredict

    unsigned intAluLat = 1;
    unsigned intMultLat = 3;
    unsigned intDivLat = 18;       //!< unpipelined
    unsigned fpAluLat = 4;
    unsigned fpMultLat = 5;
    unsigned fpDivLat = 18;        //!< unpipelined

    TournamentPredictor::Params predictor{};
};

/** Per-instruction timing outcome. */
struct CommitTiming
{
    Tick commitAt = 0;        //!< tick this instruction committed
    bool l1dHit = false;
    bool mispredicted = false;
    bool needsLineCopy = false; //!< first write to line this checkpoint
};

/**
 * The out-of-order main core timing model.
 *
 * The functional result of each instruction is computed first (by
 * core::System); advance() then accounts its timing.  When a memory
 * access cannot allocate in the L1D because every way of its set is
 * pinned by unchecked segments, the supplied pinned-stall resolver is
 * invoked: it must make progress (verify the oldest segment) and
 * return the tick at which the access may retry.
 */
class MainCore
{
  public:
    /** Resolver invoked on a pinned-set stall; returns retry tick. */
    using PinnedStallResolver = std::function<Tick(Tick)>;

    MainCore(const MainCoreParams &params, ClockDomain &clock,
             mem::CacheHierarchy &hierarchy);

    /**
     * Account timing for one committed instruction.
     * @param r commit record from the execution engine (functional
     *        outcome plus decode metadata: fetched instruction and
     *        encoded source registers)
     * @param pin_seg segment id to pin written lines under (mem::noPin
     *        to disable unchecked-store buffering)
     * @param stamp checkpoint id for line-granularity rollback copies
     */
    CommitTiming advance(const isa::CommitRecord &r,
                         std::uint64_t pin_seg, std::uint64_t stamp)
    {
        return advance(r, r.pc, r.memAddr, r.nextPc, pin_seg, stamp);
    }

    /**
     * As above, with the main core's redundantly translated physical
     * addresses passed alongside the (virtual-addressed) record: the
     * timing path -- fetch, data access, and predictor indexing --
     * runs on @p fetch_pc / @p mem_addr / @p next_pc so the commit
     * loop does not have to copy and patch the whole record.
     */
    CommitTiming advance(const isa::CommitRecord &r, Addr fetch_pc,
                         Addr mem_addr, Addr next_pc,
                         std::uint64_t pin_seg, std::uint64_t stamp);

    /** Set the handler for pinned-set stalls. */
    void setPinnedStallResolver(PinnedStallResolver resolver)
    {
        resolver_ = std::move(resolver);
    }

    /** Commit tick of the most recent instruction. */
    Tick now() const { return lastCommit_; }

    /** Stall the whole pipeline until @p t (checker-wait stalls). */
    void stallUntil(Tick t);

    /**
     * Block commit for @p n cycles (the 16-cycle register checkpoint
     * of Table I).
     */
    void blockCommit(Cycles n);

    /**
     * Squash and restart the pipeline at @p at (after rollback): all
     * in-flight state is discarded and fetch restarts cold.
     */
    void resetPipeline(Tick at);

    /** @{ Statistics. */
    std::uint64_t committed() const { return committed_; }
    std::uint64_t mispredicts() const { return mispredicts_; }
    const TournamentPredictor &predictor() const { return predictor_; }
    TournamentPredictor &predictor() { return predictor_; }
    /** @} */

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("committed", "instructions committed",
                            [this] { return double(committed_); });
        g.add<stats::Gauge>("mispredicts", "commit-time mispredicts",
                            [this] { return double(mispredicts_); });
    }

  private:
    Tick cycles(unsigned n) const { return clock_.cyclesToTicks(n); }

    /**
     * period / width, memoized: DVFS can retune the clock between
     * instructions, so the quotient is revalidated with a compare
     * rather than recomputed with a divide per fetch/commit slot.
     */
    Tick
    slotTicks() const
    {
        if (clock_.period() != slotPeriod_) {
            slotPeriod_ = clock_.period();
            slotTicks_ = slotPeriod_ / params_.width;
        }
        return slotTicks_;
    }

    /** Ready tick of a record's encoded source registers. */
    Tick sourceReady(const isa::CommitRecord &r) const;

    /** Issue through a functional-unit group; returns complete tick. */
    Tick useFu(std::vector<Tick> &group, Tick ready, unsigned latency,
               bool pipelined);

    MainCoreParams params_;
    ClockDomain &clock_;
    mem::CacheHierarchy &hierarchy_;
    TournamentPredictor predictor_;
    PinnedStallResolver resolver_;

    Tick fetchReadyAt_ = 0;
    Tick nextFetchSlot_ = 0;
    Tick nextCommitSlot_ = 0;
    Tick lastCommit_ = 0;

    std::vector<Tick> regReadyX_;
    std::vector<Tick> regReadyF_;
    std::vector<Tick> robRing_;
    std::vector<Tick> iqRing_;
    std::vector<Tick> lqRing_;
    std::vector<Tick> sqRing_;
    std::size_t robHead_ = 0, iqHead_ = 0, lqHead_ = 0, sqHead_ = 0;

    std::vector<Tick> intAluBusy_;
    std::vector<Tick> fpAluBusy_;
    std::vector<Tick> multDivBusy_;

    mutable Tick slotPeriod_ = 0;  //!< clock period slotTicks_ is for
    mutable Tick slotTicks_ = 0;

    std::uint64_t committed_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace cpu
} // namespace paradox

#endif // PARADOX_CPU_MAIN_CORE_HH
