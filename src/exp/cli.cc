#include "exp/cli.hh"

#include <cstdlib>

namespace paradox
{
namespace exp
{

namespace
{

const char *
valueName(int kind)
{
    switch (kind) {
      case 1:
      case 2:
      case 4:
        return "N";
      case 3:
        return "X";
      case 5:
        return "S";
      default:
        return "";
    }
}

} // namespace

void
Cli::add(const std::string &name, Kind kind, void *target,
         const std::string &help)
{
    entries_.push_back({name, kind, target, help});
}

void
Cli::flag(const std::string &name, bool &target,
          const std::string &help)
{
    add(name, Kind::Flag, &target, help);
}

void
Cli::opt(const std::string &name, unsigned &target,
         const std::string &help)
{
    add(name, Kind::Unsigned, &target, help);
}

void
Cli::opt(const std::string &name, int &target, const std::string &help)
{
    add(name, Kind::Int, &target, help);
}

void
Cli::opt(const std::string &name, double &target,
         const std::string &help)
{
    add(name, Kind::Double, &target, help);
}

void
Cli::opt(const std::string &name, std::uint64_t &target,
         const std::string &help)
{
    add(name, Kind::U64, &target, help);
}

void
Cli::opt(const std::string &name, std::string &target,
         const std::string &help)
{
    add(name, Kind::String, &target, help);
}

void
Cli::alias(const std::string &shortName, const std::string &longName)
{
    aliases_.push_back({shortName, longName});
}

const Cli::Entry *
Cli::find(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return &e;
    return nullptr;
}

std::string
Cli::shortFor(const std::string &longName) const
{
    for (const Alias &a : aliases_)
        if (a.longName == longName)
            return a.shortName;
    return "";
}

bool
Cli::parseArgs(const std::vector<std::string> &args, std::string &error)
{
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string &arg = args[i];
        std::string name;
        if (arg.rfind("--", 0) == 0) {
            name = arg.substr(2);
        } else if (arg.size() > 1 && arg[0] == '-') {
            for (const Alias &a : aliases_)
                if (a.shortName == arg.substr(1))
                    name = a.longName;
            if (name.empty()) {
                error = "unknown flag '" + arg + "'";
                return false;
            }
        } else {
            error = "unexpected argument '" + arg + "'";
            return false;
        }
        const Entry *e = find(name);
        if (!e) {
            error = "unknown flag '" + arg + "'";
            return false;
        }
        if (e->kind == Kind::Flag) {
            *static_cast<bool *>(e->target) = true;
            continue;
        }
        if (i + 1 >= args.size()) {
            error = arg + " needs a value";
            return false;
        }
        const std::string &value = args[++i];
        const char *text = value.c_str();
        char *end = nullptr;
        switch (e->kind) {
          case Kind::Unsigned: {
            unsigned long v = std::strtoul(text, &end, 0);
            *static_cast<unsigned *>(e->target) = unsigned(v);
            break;
          }
          case Kind::Int: {
            long v = std::strtol(text, &end, 0);
            *static_cast<int *>(e->target) = int(v);
            break;
          }
          case Kind::Double: {
            double v = std::strtod(text, &end);
            *static_cast<double *>(e->target) = v;
            break;
          }
          case Kind::U64: {
            unsigned long long v = std::strtoull(text, &end, 0);
            *static_cast<std::uint64_t *>(e->target) = v;
            break;
          }
          case Kind::String:
            *static_cast<std::string *>(e->target) = value;
            end = const_cast<char *>(text + value.size());
            break;
          case Kind::Flag:
            break;
        }
        if (end == text || (end && *end != '\0')) {
            error = arg + ": invalid value '" + value + "'";
            return false;
        }
    }
    return true;
}

bool
Cli::parse(int argc, char **argv)
{
    std::vector<std::string> args;
    args.reserve(std::size_t(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--help") {
            usage(stdout);
            std::exit(0);
        }
        args.emplace_back(argv[i]);
    }
    std::string error;
    if (!parseArgs(args, error)) {
        std::fprintf(stderr, "%s: %s\n", prog_.c_str(), error.c_str());
        usage(stderr);
        return false;
    }
    return true;
}

void
Cli::usage(std::FILE *out) const
{
    std::fprintf(out, "%s -- %s\n\nusage: %s [options]\n\noptions:\n",
                 prog_.c_str(), summary_.c_str(), prog_.c_str());
    for (const Entry &e : entries_) {
        std::string left = "--" + e.name;
        const std::string s = shortFor(e.name);
        if (!s.empty())
            left = "-" + s + ", " + left;
        if (e.kind != Kind::Flag) {
            left += ' ';
            left += valueName(int(e.kind));
        }
        std::fprintf(out, "  %-20s %s\n", left.c_str(),
                     e.help.c_str());
    }
    std::fprintf(out, "  %-20s %s\n", "--help", "show this message");
}

} // namespace exp
} // namespace paradox
