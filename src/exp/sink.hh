/**
 * @file
 * JSONL result sink with a versioned schema, shared by the figure
 * harnesses and the tools.
 *
 * A sink stream is line-oriented: the first line is a header record
 * naming the schema version and the producing tool, each subsequent
 * line is one run record (spec + outcome), and an optional trailing
 * summary record closes the stream.  Line-oriented output means a
 * parallel campaign can be diffed between job counts with plain
 * `cmp`, and consumers never need a streaming JSON parser.
 */

#ifndef PARADOX_EXP_SINK_HH
#define PARADOX_EXP_SINK_HH

#include <cstdio>
#include <string>

#include "exp/spec.hh"

namespace paradox
{
namespace exp
{

/** Schema identifier written into every header record. */
constexpr const char *resultSchema = "paradox-exp-result/1";

/** One run record (spec + outcome) as a single JSON line (no \n). */
std::string recordJson(const ExperimentSpec &spec,
                       const RunOutcome &outcome);

/** Writes schema'd JSONL to a FILE (not owned). */
class JsonlSink
{
  public:
    /** @p tool names the producer in the header record. */
    JsonlSink(std::FILE *out, const std::string &tool);

    /**
     * Emit the header line.  @p extra is spliced verbatim into the
     * header object (e.g. "\"seeds\":2,\"smoke\":false").
     */
    void header(const std::string &extra = "");

    /** Emit one run record. */
    void write(const ExperimentSpec &spec, const RunOutcome &outcome);

    /** Emit a pre-rendered single-line JSON object. */
    void writeLine(const std::string &json);

    std::FILE *stream() const { return out_; }

  private:
    std::FILE *out_;
    std::string tool_;
};

} // namespace exp
} // namespace paradox

#endif // PARADOX_EXP_SINK_HH
