/**
 * @file
 * The unified experiment API: every headline result in the paper
 * (figures 3, 8-13, Table 1) is a sweep of many independent,
 * deterministic single-system simulations.  ExperimentSpec is the
 * one value type describing such a run -- mode, workload, fault
 * plan, DVFS, seed and limits -- and runOne() executes it.
 *
 * This supersedes the per-harness RunSpec structs that used to live
 * in bench/common.hh and the two tools: one spec type means one
 * place to add a knob, and one runner (exp::Runner) to sweep it in
 * parallel.
 */

#ifndef PARADOX_EXP_SPEC_HH
#define PARADOX_EXP_SPEC_HH

#include <cstdint>
#include <functional>
#include <string>

#include "core/system.hh"
#include "faults/fault_model.hh"

namespace paradox
{
namespace exp
{

/** Forward declaration (filled by runOne). */
struct RunOutcome;

/** Default per-run bounds: generous but livelock-safe. */
inline core::RunLimits
defaultLimits()
{
    core::RunLimits limits;
    limits.maxExecuted = 60'000'000;
    limits.maxTicks = ticksPerMs * 500;
    return limits;
}

/**
 * One configured system run on a named workload.
 *
 * The common knobs are plain fields; anything rarer goes through the
 * @ref configure hook, which gets the final SystemConfig before the
 * System is built (ablation toggles, voltage-policy switches, ...).
 */
struct ExperimentSpec
{
    std::string label;             //!< free-form tag carried to sinks
    core::Mode mode = core::Mode::ParaDox;
    std::string workload = "bitcount";
    unsigned scale = 1;

    /** @{ Fault plan. */
    double faultRate = 0.0;        //!< fixed-rate injection if > 0
    faults::Persistence persistence = faults::Persistence::Transient;
    int pinChecker = -1;           //!< restrict injector to one checker
    double mainCoreRate = 0.0;     //!< faults on the main core itself
    double eccRate = 0.0;          //!< SECDED memory upsets per load
    bool dvfs = false;             //!< voltage-driven injection
    bool escalate = false;         //!< enable the escalation ladder
    /** @} */

    /** @{ Chip-map injection (faults::ChipModel).  chipSeed != 0
     *  replaces the geometric injectors with a persistent per-chip
     *  weak-cell map; faultRate is then ignored. */
    std::uint64_t chipSeed = 0;    //!< 0 = chip mode off
    unsigned weakCells = 48;       //!< weak-cell population size
    double vminSigma = 0.008;      //!< per-core Vmin spread (volts)
    /** Fixed undervolted rail (> 0; requires chip mode, no dvfs). */
    double supplyVoltage = 0.0;
    /** @} */

    /** @{ Config overrides (0 = keep the mode's default). */
    unsigned checkers = 0;
    unsigned maxCheckpoint = 0;
    unsigned timeoutFactor = 0;
    /** @} */

    /** Execution engine ("decoded" default; "reference" for the
     * legacy per-step decoder -- differential/debug runs). */
    isa::EngineKind engine = isa::EngineKind::Decoded;

    /**
     * Install the static vulnerability model (analysis::VulnAnalysis
     * over the workload program + result word): every firing fault is
     * stamped live/dead/unknown and the run reports masked-rollback
     * and dead-divergence counters (RunResult).
     */
    bool vuln = false;

    /** @{ Execution tracing (src/obs). Empty traceFile = off. */
    std::string traceFile;         //!< Chrome JSON path (+ .jsonl twin)
    unsigned traceMetricsUs = 10;  //!< metrics sampling interval
    /** @} */

    /**
     * Emit per-job host timing (job_wall_ms / job_queue_ms) in result
     * JSONL records.  Off by default: timing varies run to run, and
     * campaign outputs are expected to be byte-identical between
     * serial and parallel executions of the same specs.
     */
    bool recordTimings = false;

    std::uint64_t seed = 12345;
    core::RunLimits limits = defaultLimits();

    /** Last-word tweak of the built config (may be empty). */
    std::function<void(core::SystemConfig &)> configure;

    /**
     * Post-run observer with access to the live System (voltage
     * traces, stat dumps, ...).  Runs on the worker executing this
     * spec; it must only touch its own captures.
     */
    std::function<void(core::System &, RunOutcome &)> observe;
};

/** Compact summary of a stats::Distribution. */
struct DistSummary
{
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t count = 0;
};

/** Everything a sweep consumer needs from one finished run. */
struct RunOutcome
{
    core::RunResult result;
    std::uint64_t finalValue = 0;  //!< memory word at resultAddr
    std::uint64_t expected = 0;    //!< workload's golden checksum
    bool correct = false;          //!< halted with the golden value
    std::uint64_t eccCorrected = 0;
    DistSummary rollbackNs;
    DistSummary wastedNs;
    DistSummary ckptLen;
    std::string tracePath;         //!< Chrome JSON written (if traced)
    std::string error;             //!< non-empty: the job threw
    /** @{ Host-side job timing, stamped by exp::Runner (< 0 when the
     *  spec ran outside a Runner batch). */
    double jobWallMs = -1.0;       //!< wall-clock spent in runOne()
    double jobQueueMs = -1.0;      //!< batch start to job start
    /** @} */

    bool ok() const { return error.empty(); }
};

/**
 * Execute @p spec to completion and summarize it.
 *
 * Throws std::invalid_argument for malformed specs (unknown
 * workload, out-of-range pinned checker) rather than exiting, so a
 * batch runner can report one bad job without aborting the sweep.
 */
RunOutcome runOne(const ExperimentSpec &spec);

/** Parse a mode name (baseline|detect|paramedic|paradox). */
bool parseMode(const std::string &name, core::Mode &out);

/**
 * Deterministic per-job trace filename: "dir/run-0007.json".
 * Sweeps use it so a re-run with the same specs overwrites in place.
 */
std::string tracePathForJob(const std::string &dir, std::size_t index);

} // namespace exp
} // namespace paradox

#endif // PARADOX_EXP_SPEC_HH
