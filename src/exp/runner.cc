#include "exp/runner.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace paradox
{
namespace exp
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Serialized progress/ETA line, redrawn in place on stderr. */
class ProgressMeter
{
  public:
    ProgressMeter(const RunnerOptions &opt, std::size_t total,
                  unsigned workers)
        : enabled_(opt.progress && total > 0 && logLevel() >= 1),
          label_(opt.label), total_(total),
          workers_(workers ? workers : 1), start_(Clock::now())
    {
    }

    /**
     * One job finished, taking @p job_seconds of wall clock (< 0 if
     * the caller could not time it).  Timed jobs drive the ETA: mean
     * job time x the number of worker waves left, which converges
     * much faster than elapsed/done extrapolation when job sizes are
     * uniform and the pool is wide.
     */
    void
    tick(double job_seconds)
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        if (job_seconds >= 0.0) {
            jobSeconds_ += job_seconds;
            ++timed_;
        }
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        double eta = 0.0;
        if (timed_ > 0) {
            const double mean = jobSeconds_ / double(timed_);
            const double waves = std::ceil(double(total_ - done_) /
                                           double(workers_));
            eta = mean * waves;
        } else if (done_ > 0) {
            eta = elapsed / double(done_) * double(total_ - done_);
        }
        char line[160];
        int len = std::snprintf(
            line, sizeof line,
            "\r[%s] %zu/%zu (%3.0f%%) %.1fs elapsed, eta %.1fs %s",
            label_.c_str(), done_, total_,
            100.0 * double(done_) / double(total_), elapsed, eta,
            done_ == total_ ? "\n" : "");
        // logRaw serializes with warn()/inform() from the workers,
        // so a redraw never splices into the middle of a log line.
        len = std::clamp(len, 0, int(sizeof line) - 1);
        logRaw(std::string(line, std::size_t(len)));
    }

  private:
    const bool enabled_;
    const std::string label_;
    const std::size_t total_;
    const unsigned workers_;
    const Clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
    std::size_t timed_ = 0;
    double jobSeconds_ = 0.0;
};

} // namespace

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
Runner::dispatch(std::size_t n,
                 const std::function<double(std::size_t)> &job)
{
    const unsigned jobs = opt_.jobs ? opt_.jobs : defaultJobs();

    if (jobs <= 1 || n <= 1) {
        ProgressMeter meter(opt_, n, 1);
        for (std::size_t i = 0; i < n; ++i)
            meter.tick(job(i));
        return;
    }

    const unsigned spawn = unsigned(std::min<std::size_t>(jobs, n));
    ProgressMeter meter(opt_, n, spawn);
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            double secs = -1.0;
            try {
                secs = job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
            meter.tick(secs);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(spawn);
    for (unsigned t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunOutcome>
Runner::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<RunOutcome> results(specs.size());
    const auto batch_start = Clock::now();
    dispatch(specs.size(), [&](std::size_t i) -> double {
        const auto start = Clock::now();
        try {
            results[i] = runOne(specs[i]);
        } catch (const std::exception &e) {
            results[i] = RunOutcome{};
            results[i].error = e.what();
        }
        const double wall = std::chrono::duration<double>(
                                Clock::now() - start)
                                .count();
        // Host timing always lands in the outcome; whether it is
        // *emitted* is the spec's recordTimings decision (sink.cc).
        results[i].jobWallMs = wall * 1e3;
        results[i].jobQueueMs =
            std::chrono::duration<double, std::milli>(start -
                                                      batch_start)
                .count();
        return wall;
    });
    return results;
}

std::vector<IsolatedResult>
runIsolated(std::size_t n,
            const std::function<std::string(std::size_t)> &fn,
            const RunnerOptions &opt)
{
    struct Child
    {
        pid_t pid = -1;
        int fd = -1;
        std::size_t index = 0;
        Clock::time_point forked{};
    };

    const unsigned jobs =
        std::max(1u, opt.jobs ? opt.jobs : defaultJobs());
    std::vector<IsolatedResult> results(n);
    std::vector<Child> inflight;
    ProgressMeter meter(opt, n,
                        unsigned(std::min<std::size_t>(jobs, n)));
    const auto batch_start = Clock::now();
    std::size_t launched = 0;

    auto launch = [&]() -> bool {
        if (launched >= n)
            return false;
        const std::size_t idx = launched++;
        int fds[2];
        if (pipe(fds) != 0) {
            std::perror("exp::runIsolated: pipe");
            std::exit(2);
        }
        pid_t pid = fork();
        if (pid < 0) {
            std::perror("exp::runIsolated: fork");
            std::exit(2);
        }
        if (pid == 0) {
            close(fds[0]);
            if (opt.childTimeoutSec)
                alarm(opt.childTimeoutSec);
            std::string payload;
            int rc = 0;
            try {
                payload = fn(idx);
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "exp::runIsolated: job %zu: %s\n", idx,
                             e.what());
                rc = 121;
            }
            std::size_t off = 0;
            while (off < payload.size()) {
                ssize_t w = write(fds[1], payload.data() + off,
                                  payload.size() - off);
                if (w <= 0)
                    _exit(122);
                off += std::size_t(w);
            }
            close(fds[1]);
            _exit(rc);
        }
        close(fds[1]);
        inflight.push_back({pid, fds[0], idx, Clock::now()});
        results[idx].queueMs =
            std::chrono::duration<double, std::milli>(
                inflight.back().forked - batch_start)
                .count();
        return true;
    };

    auto reap = [&](std::size_t slot) {
        Child c = inflight[slot];
        inflight.erase(inflight.begin() + long(slot));
        close(c.fd);
        int status = 0;
        waitpid(c.pid, &status, 0);
        IsolatedResult &r = results[c.index];
        r.status = status;
        r.crashed = !WIFEXITED(status) || r.payload.empty();
        const double wall_s =
            std::chrono::duration<double>(Clock::now() - c.forked)
                .count();
        r.wallMs = wall_s * 1e3;
        meter.tick(wall_s);
    };

    while (launch() && inflight.size() < jobs) {
    }

    while (!inflight.empty()) {
        std::vector<pollfd> pfds(inflight.size());
        for (std::size_t i = 0; i < inflight.size(); ++i)
            pfds[i] = {inflight[i].fd, POLLIN, 0};
        if (poll(pfds.data(), nfds_t(pfds.size()), -1) < 0) {
            if (errno == EINTR)
                continue;
            std::perror("exp::runIsolated: poll");
            std::exit(2);
        }
        // Walk backwards so reap()'s erase keeps indices valid.
        for (std::size_t i = pfds.size(); i-- > 0;) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char buf[4096];
            ssize_t got = read(inflight[i].fd, buf, sizeof buf);
            if (got > 0) {
                results[inflight[i].index].payload.append(
                    buf, std::size_t(got));
            } else if (got == 0) {
                reap(i);
                launch();
            }
        }
    }
    return results;
}

} // namespace exp
} // namespace paradox
