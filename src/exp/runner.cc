#include "exp/runner.hh"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/logging.hh"

namespace paradox
{
namespace exp
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Serialized progress/ETA line, redrawn in place on stderr. */
class ProgressMeter
{
  public:
    ProgressMeter(const RunnerOptions &opt, std::size_t total)
        : enabled_(opt.progress && total > 0 && logLevel() >= 1),
          label_(opt.label), total_(total), start_(Clock::now())
    {
    }

    void
    tick()
    {
        if (!enabled_)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        ++done_;
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start_)
                .count();
        const double eta =
            done_ ? elapsed / double(done_) *
                        double(total_ - done_)
                  : 0.0;
        char line[160];
        int len = std::snprintf(
            line, sizeof line,
            "\r[%s] %zu/%zu (%3.0f%%) %.1fs elapsed, eta %.1fs %s",
            label_.c_str(), done_, total_,
            100.0 * double(done_) / double(total_), elapsed, eta,
            done_ == total_ ? "\n" : "");
        // logRaw serializes with warn()/inform() from the workers,
        // so a redraw never splices into the middle of a log line.
        len = std::clamp(len, 0, int(sizeof line) - 1);
        logRaw(std::string(line, std::size_t(len)));
    }

  private:
    const bool enabled_;
    const std::string label_;
    const std::size_t total_;
    const Clock::time_point start_;
    std::mutex mutex_;
    std::size_t done_ = 0;
};

} // namespace

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

void
Runner::dispatch(std::size_t n,
                 const std::function<void(std::size_t)> &job)
{
    const unsigned jobs = opt_.jobs ? opt_.jobs : defaultJobs();
    ProgressMeter meter(opt_, n);

    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            job(i);
            meter.tick();
        }
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto worker = [&]() {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                job(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
            meter.tick();
        }
    };

    std::vector<std::thread> pool;
    const unsigned spawn = unsigned(std::min<std::size_t>(jobs, n));
    pool.reserve(spawn);
    for (unsigned t = 0; t < spawn; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<RunOutcome>
Runner::run(const std::vector<ExperimentSpec> &specs)
{
    std::vector<RunOutcome> results(specs.size());
    dispatch(specs.size(), [&](std::size_t i) {
        try {
            results[i] = runOne(specs[i]);
        } catch (const std::exception &e) {
            results[i] = RunOutcome{};
            results[i].error = e.what();
        }
    });
    return results;
}

std::vector<IsolatedResult>
runIsolated(std::size_t n,
            const std::function<std::string(std::size_t)> &fn,
            const RunnerOptions &opt)
{
    struct Child
    {
        pid_t pid = -1;
        int fd = -1;
        std::size_t index = 0;
    };

    const unsigned jobs =
        std::max(1u, opt.jobs ? opt.jobs : defaultJobs());
    std::vector<IsolatedResult> results(n);
    std::vector<Child> inflight;
    ProgressMeter meter(opt, n);
    std::size_t launched = 0;

    auto launch = [&]() -> bool {
        if (launched >= n)
            return false;
        const std::size_t idx = launched++;
        int fds[2];
        if (pipe(fds) != 0) {
            std::perror("exp::runIsolated: pipe");
            std::exit(2);
        }
        pid_t pid = fork();
        if (pid < 0) {
            std::perror("exp::runIsolated: fork");
            std::exit(2);
        }
        if (pid == 0) {
            close(fds[0]);
            if (opt.childTimeoutSec)
                alarm(opt.childTimeoutSec);
            std::string payload;
            int rc = 0;
            try {
                payload = fn(idx);
            } catch (const std::exception &e) {
                std::fprintf(stderr,
                             "exp::runIsolated: job %zu: %s\n", idx,
                             e.what());
                rc = 121;
            }
            std::size_t off = 0;
            while (off < payload.size()) {
                ssize_t w = write(fds[1], payload.data() + off,
                                  payload.size() - off);
                if (w <= 0)
                    _exit(122);
                off += std::size_t(w);
            }
            close(fds[1]);
            _exit(rc);
        }
        close(fds[1]);
        inflight.push_back({pid, fds[0], idx});
        return true;
    };

    auto reap = [&](std::size_t slot) {
        Child c = inflight[slot];
        inflight.erase(inflight.begin() + long(slot));
        close(c.fd);
        int status = 0;
        waitpid(c.pid, &status, 0);
        IsolatedResult &r = results[c.index];
        r.status = status;
        r.crashed = !WIFEXITED(status) || r.payload.empty();
        meter.tick();
    };

    while (launch() && inflight.size() < jobs) {
    }

    while (!inflight.empty()) {
        std::vector<pollfd> pfds(inflight.size());
        for (std::size_t i = 0; i < inflight.size(); ++i)
            pfds[i] = {inflight[i].fd, POLLIN, 0};
        if (poll(pfds.data(), nfds_t(pfds.size()), -1) < 0) {
            if (errno == EINTR)
                continue;
            std::perror("exp::runIsolated: poll");
            std::exit(2);
        }
        // Walk backwards so reap()'s erase keeps indices valid.
        for (std::size_t i = pfds.size(); i-- > 0;) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            char buf[4096];
            ssize_t got = read(inflight[i].fd, buf, sizeof buf);
            if (got > 0) {
                results[inflight[i].index].payload.append(
                    buf, std::size_t(got));
            } else if (got == 0) {
                reap(i);
                launch();
            }
        }
    }
    return results;
}

} // namespace exp
} // namespace paradox
