/**
 * @file
 * Typed command-line argument parser for the tools and benches.
 *
 * Replaces the hand-rolled strcmp chains that had grown separately
 * in paradox_sim and fault_campaign: flags are declared once with a
 * typed target and a help string; parsing validates values (a flag
 * expecting a number rejects "abc" instead of silently reading 0),
 * rejects unknown flags, and --help is generated from the
 * declarations.
 */

#ifndef PARADOX_EXP_CLI_HH
#define PARADOX_EXP_CLI_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace paradox
{
namespace exp
{

/** Declarative typed flag parser. */
class Cli
{
  public:
    Cli(std::string prog, std::string summary)
        : prog_(std::move(prog)), summary_(std::move(summary))
    {
    }

    /** @{ Declare one option; @p name without the leading "--". */
    void flag(const std::string &name, bool &target,
              const std::string &help);
    void opt(const std::string &name, unsigned &target,
             const std::string &help);
    void opt(const std::string &name, int &target,
             const std::string &help);
    void opt(const std::string &name, double &target,
             const std::string &help);
    void opt(const std::string &name, std::uint64_t &target,
             const std::string &help);
    void opt(const std::string &name, std::string &target,
             const std::string &help);
    /** @} */

    /**
     * Declare a single-dash shorthand: alias("v", "verbose") makes
     * -v equivalent to --verbose.  The long form must already be
     * declared.
     */
    void alias(const std::string &shortName,
               const std::string &longName);

    /**
     * Parse argv.  On --help prints usage to stdout and exits 0; on
     * any error prints the problem + usage to stderr and returns
     * false (callers should exit 2).
     */
    bool parse(int argc, char **argv);

    /** Testable core: parse @p args, report problems in @p error. */
    bool parseArgs(const std::vector<std::string> &args,
                   std::string &error);

    /** Render the generated --help text. */
    void usage(std::FILE *out) const;

  private:
    enum class Kind
    {
        Flag,
        Unsigned,
        Int,
        Double,
        U64,
        String,
    };

    struct Entry
    {
        std::string name;
        Kind kind;
        void *target;
        std::string help;
    };

    struct Alias
    {
        std::string shortName;
        std::string longName;
    };

    const Entry *find(const std::string &name) const;
    void add(const std::string &name, Kind kind, void *target,
             const std::string &help);
    /** Short form ("v") of @p longName, or "" if none. */
    std::string shortFor(const std::string &longName) const;

    std::string prog_;
    std::string summary_;
    std::vector<Entry> entries_;
    std::vector<Alias> aliases_;
};

} // namespace exp
} // namespace paradox

#endif // PARADOX_EXP_CLI_HH
