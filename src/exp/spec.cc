#include "exp/spec.hh"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>

#include "analysis/vuln.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "obs/trace_writer.hh"
#include "power/undervolt_data.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace paradox
{
namespace exp
{

namespace
{

DistSummary
summarize(const stats::Distribution &d)
{
    DistSummary s;
    s.mean = d.mean();
    s.min = d.min();
    s.max = d.max();
    s.count = d.count();
    return s;
}

} // namespace

RunOutcome
runOne(const ExperimentSpec &spec)
{
    PARADOX_PROF_SCOPE("run");
    // The setup phase is scoped with an optional so it closes before
    // "sim" opens even when construction throws.
    std::optional<obs::ScopedPhase> setup_phase;
    setup_phase.emplace("setup");

    const auto &names = workloads::allNames();
    if (std::find(names.begin(), names.end(), spec.workload) ==
        names.end())
        throw std::invalid_argument("unknown workload '" +
                                    spec.workload + "'");

    workloads::Workload w = workloads::build(spec.workload, spec.scale);

    core::SystemConfig config = core::SystemConfig::forMode(spec.mode);
    config.seed = spec.seed;
    if (spec.checkers)
        config.checkers.count = spec.checkers;
    if (spec.maxCheckpoint) {
        config.checkpointAimd.maxLength = spec.maxCheckpoint;
        config.checkpointAimd.initial = std::min(
            config.checkpointAimd.initial, spec.maxCheckpoint);
    }
    if (spec.timeoutFactor)
        config.checkerTimeoutFactor = spec.timeoutFactor;
    config.engine = spec.engine;
    config.memoryEccFaultRate = spec.eccRate;
    if (spec.escalate)
        config.enableEscalation();
    if (spec.configure)
        spec.configure(config);

    if (spec.pinChecker >= int(config.checkers.count))
        throw std::invalid_argument(
            "pinned checker " + std::to_string(spec.pinChecker) +
            " out of range (only " +
            std::to_string(config.checkers.count) + " checkers)");

    // Chip mode: sample this chip's persistent fault map.  The
    // voltage->probability shape is the workload's own undervolt
    // profile, so chip-mode and ambient-mode runs share calibration.
    std::shared_ptr<const faults::ChipModel> chip;
    if (spec.chipSeed != 0) {
        faults::ChipConfig cc;
        cc.chipSeed = spec.chipSeed;
        cc.weakCells = spec.weakCells;
        cc.checkerCount = config.checkers.count;
        cc.logRows = unsigned(config.log.segmentBytes /
                              config.log.loadEntryBytes);
        cc.vminSigma = spec.vminSigma;
        cc.shape = power::errorModelParams(spec.workload);
        chip = std::make_shared<faults::ChipModel>(cc);
    }
    if (spec.supplyVoltage > 0.0) {
        if (spec.dvfs)
            throw std::invalid_argument(
                "supplyVoltage conflicts with dvfs (the AIMD "
                "controller owns the rail)");
        if (!chip)
            throw std::invalid_argument(
                "supplyVoltage requires chip mode (chipSeed != 0)");
    }

    core::System system(config, w.program);
    if (spec.dvfs) {
        system.enableDvfs(power::errorModelParams(spec.workload));
        if (chip)
            // Replace the uniform pair: chip mode needs an injector
            // per site class so every weak cell is reachable.
            system.setFaultPlan(faults::chipPlan(
                spec.seed, spec.persistence, spec.pinChecker));
    } else if (chip) {
        system.setFaultPlan(faults::chipPlan(
            spec.seed, spec.persistence, spec.pinChecker));
    } else if (spec.faultRate > 0.0) {
        system.setFaultPlan(faults::uniformPlan(
            spec.faultRate, spec.seed, spec.persistence,
            spec.pinChecker));
    }
    if (chip) {
        // Weak cells in the main-core domain flip its committed
        // state through the same plan machinery (ambient: the main
        // core is one physical domain, never pinned to a checker).
        system.setMainCoreFaultPlan(faults::chipPlan(
            spec.seed * 31 + 7, spec.persistence, -1));
    } else if (spec.mainCoreRate > 0.0) {
        faults::FaultConfig fc;
        fc.kind = faults::FaultKind::RegisterBitFlip;
        fc.rate = spec.mainCoreRate;
        fc.seed = spec.seed * 31 + 7;
        faults::FaultPlan plan;
        plan.add(fc);
        system.setMainCoreFaultPlan(std::move(plan));
    }
    if (chip) {
        system.setChipModel(chip);
        if (spec.supplyVoltage > 0.0)
            system.setSupplyVoltage(spec.supplyVoltage);
    }
    if (spec.vuln)
        // The result word is architectural output beyond the declared
        // footprint; everything else follows from the program.
        system.setVulnModel(analysis::VulnAnalysis::build(
            w.program, {{workloads::resultAddr, 8, "result"}}));

    obs::TraceSink trace;
    if (!spec.traceFile.empty()) {
        if (!obs::tracingCompiledIn)
            warn("tracing requested but compiled out "
                 "(PARADOX_TRACING=0); no trace will be written");
        system.setTracer(&trace, Tick(spec.traceMetricsUs) * ticksPerUs);
    }

    setup_phase.reset();

    RunOutcome out;
    {
        PARADOX_PROF_SCOPE("sim");
        out.result = system.run(spec.limits);
    }
    out.finalValue = system.memory().read(workloads::resultAddr, 8);
    out.expected = w.expectedResult;
    out.correct = out.result.halted && out.finalValue == out.expected;
    out.eccCorrected = system.eccCorrected();
    out.rollbackNs = summarize(system.rollbackTimesNs());
    out.wastedNs = summarize(system.wastedExecNs());
    out.ckptLen = summarize(system.checkpointLengths());
    if (!spec.traceFile.empty() && obs::tracingCompiledIn) {
        PARADOX_PROF_SCOPE("trace-write");
        const std::string tool =
            spec.label.empty() ? spec.workload : spec.label;
        if (!obs::writeChromeJsonFile(trace, spec.traceFile, tool))
            throw std::runtime_error("cannot write trace '" +
                                     spec.traceFile + "'");
        const std::string jsonl = obs::traceJsonlPath(spec.traceFile);
        if (!obs::writeTraceJsonlFile(trace, jsonl, tool))
            throw std::runtime_error("cannot write trace '" + jsonl +
                                     "'");
        out.tracePath = spec.traceFile;
        if (trace.dropped())
            warn("trace '" + spec.traceFile + "' dropped " +
                 std::to_string(trace.dropped()) +
                 " events (buffer full)");
    }
    if (spec.observe) {
        PARADOX_PROF_SCOPE("observe");
        spec.observe(system, out);
    }
    return out;
}

std::string
tracePathForJob(const std::string &dir, std::size_t index)
{
    char name[32];
    std::snprintf(name, sizeof name, "run-%04zu.json", index);
    if (dir.empty() || dir.back() == '/')
        return dir + name;
    return dir + "/" + name;
}

bool
parseMode(const std::string &name, core::Mode &out)
{
    if (name == "baseline")
        out = core::Mode::Baseline;
    else if (name == "detect")
        out = core::Mode::DetectionOnly;
    else if (name == "paramedic")
        out = core::Mode::ParaMedic;
    else if (name == "paradox")
        out = core::Mode::ParaDox;
    else
        return false;
    return true;
}

} // namespace exp
} // namespace paradox
