#include "exp/sink.hh"

#include <sstream>

#include "core/result_json.hh"

namespace paradox
{
namespace exp
{

namespace
{

/** Minimal JSON string escaping (labels and error messages). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
recordJson(const ExperimentSpec &spec, const RunOutcome &outcome)
{
    std::ostringstream os;
    os << "{\"record\":\"run\"";
    if (!spec.label.empty())
        os << ",\"label\":\"" << escape(spec.label) << "\"";
    os << ",\"workload\":\"" << escape(spec.workload) << "\""
       << ",\"mode\":\"" << core::modeName(spec.mode) << "\""
       << ",\"scale\":" << spec.scale
       << ",\"rate\":" << spec.faultRate
       << ",\"persistence\":\""
       << faults::persistenceName(spec.persistence) << "\""
       << ",\"pin_checker\":" << spec.pinChecker
       << ",\"main_rate\":" << spec.mainCoreRate
       << ",\"ecc_rate\":" << spec.eccRate
       << ",\"dvfs\":" << (spec.dvfs ? "true" : "false")
       << ",\"escalate\":" << (spec.escalate ? "true" : "false")
       << ",\"seed\":" << spec.seed;
    if (spec.chipSeed != 0) {
        os << ",\"chip_seed\":" << spec.chipSeed
           << ",\"weak_cells\":" << spec.weakCells
           << ",\"vmin_sigma\":" << spec.vminSigma;
        if (spec.supplyVoltage > 0.0)
            os << ",\"supply\":" << spec.supplyVoltage;
    }
    if (!outcome.ok()) {
        os << ",\"error\":\"" << escape(outcome.error) << "\"}";
        return os.str();
    }
    os << ",\"correct\":" << (outcome.correct ? "true" : "false")
       << ",\"ecc_corrected\":" << outcome.eccCorrected;
    if (!outcome.tracePath.empty())
        os << ",\"trace\":\"" << escape(outcome.tracePath) << "\"";
    // Host timing only on request: it differs run to run, and the
    // default output must stay byte-identical serial vs parallel.
    if (spec.recordTimings && outcome.jobWallMs >= 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof buf,
                      ",\"job_wall_ms\":%.3f,\"job_queue_ms\":%.3f",
                      outcome.jobWallMs,
                      outcome.jobQueueMs >= 0.0 ? outcome.jobQueueMs
                                                : 0.0);
        os << buf;
    }
    os << ",\"result\":" << core::toJson(outcome.result) << "}";
    return os.str();
}

JsonlSink::JsonlSink(std::FILE *out, const std::string &tool)
    : out_(out), tool_(tool)
{
}

void
JsonlSink::header(const std::string &extra)
{
    std::fprintf(out_, "{\"record\":\"header\",\"schema\":\"%s\","
                       "\"tool\":\"%s\"%s%s}\n",
                 resultSchema, escape(tool_).c_str(),
                 extra.empty() ? "" : ",", extra.c_str());
}

void
JsonlSink::write(const ExperimentSpec &spec, const RunOutcome &outcome)
{
    writeLine(recordJson(spec, outcome));
}

void
JsonlSink::writeLine(const std::string &json)
{
    std::fputs(json.c_str(), out_);
    std::fputc('\n', out_);
    std::fflush(out_);
}

} // namespace exp
} // namespace paradox
