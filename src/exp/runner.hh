/**
 * @file
 * Parallel experiment runner: executes N independent ExperimentSpecs
 * concurrently with per-job isolation and deterministic result
 * ordering.
 *
 * Two execution backends:
 *
 *  - Runner (threads): each job builds its own System/workload/RNG
 *    inside the worker, so nothing is shared between jobs; results
 *    land at their spec's index, so a batch's output is bitwise
 *    independent of the job count.
 *
 *  - runIsolated() (forked children): for campaigns that must
 *    contain a crashing simulator.  The parent stays single-threaded
 *    and multiplexes child pipes with poll(), so there is never a
 *    fork from a multithreaded process.
 *
 * Both report progress and an ETA to stderr when asked.
 */

#ifndef PARADOX_EXP_RUNNER_HH
#define PARADOX_EXP_RUNNER_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "exp/spec.hh"

namespace paradox
{
namespace exp
{

/** How a Runner (or runIsolated) schedules a batch. */
struct RunnerOptions
{
    unsigned jobs = 1;        //!< worker count; 0 = defaultJobs()
    bool progress = false;    //!< progress/ETA line on stderr
    std::string label = "exp";//!< prefix for the progress line
    unsigned childTimeoutSec = 0; //!< runIsolated: alarm() per child
};

/** Hardware concurrency with a sane floor. */
unsigned defaultJobs();

/** Thread-pool batch executor with ordered results. */
class Runner
{
  public:
    explicit Runner(RunnerOptions opt = {}) : opt_(std::move(opt)) {}

    /**
     * Run every spec (possibly concurrently); result i corresponds
     * to spec i regardless of completion order.  A throwing job is
     * reported in its RunOutcome::error; the rest of the batch is
     * unaffected.
     */
    std::vector<RunOutcome> run(const std::vector<ExperimentSpec> &specs);

    /**
     * Ordered typed fan-out: evaluate fn(0..n-1) on the pool and
     * return the results in index order.  The first exception thrown
     * by any job is rethrown in the caller after the pool drains.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n, const std::function<R(std::size_t)> &fn)
    {
        std::vector<R> results(n);
        dispatch(n, [&](std::size_t i) {
            const auto start = std::chrono::steady_clock::now();
            results[i] = fn(i);
            return std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                .count();
        });
        return results;
    }

    const RunnerOptions &options() const { return opt_; }

  private:
    /**
     * Run job(0..n-1) across the pool; rethrows the first job
     * exception once all workers have stopped.  A job returns its
     * wall-clock seconds (< 0 if unknown), which feed the progress
     * meter's ETA.
     */
    void dispatch(std::size_t n,
                  const std::function<double(std::size_t)> &job);

    RunnerOptions opt_;
};

/** Outcome of one process-isolated job. */
struct IsolatedResult
{
    std::string payload;  //!< everything fn wrote back (via return)
    int status = 0;       //!< raw waitpid() status
    bool crashed = false; //!< abnormal exit or empty payload
    double wallMs = -1.0; //!< child lifetime, fork to reap
    double queueMs = -1.0;//!< batch start to fork
};

/**
 * Run fn(0..n-1) in forked children, at most opt.jobs in flight,
 * results in index order.  fn executes in the child; its return
 * value is piped back verbatim.  A child that dies (signal, _exit
 * without writing, sanitizer abort) yields crashed=true without
 * taking the batch down.
 */
std::vector<IsolatedResult>
runIsolated(std::size_t n, const std::function<std::string(std::size_t)> &fn,
            const RunnerOptions &opt);

} // namespace exp
} // namespace paradox

#endif // PARADOX_EXP_RUNNER_HH
