#include "core/config.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace core
{

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline:      return "baseline";
      case Mode::DetectionOnly: return "detection-only";
      case Mode::ParaMedic:     return "paramedic";
      case Mode::ParaDox:       return "paradox";
    }
    return "unknown";
}

SystemConfig
SystemConfig::forMode(Mode mode)
{
    SystemConfig config;
    config.mode = mode;
    switch (mode) {
      case Mode::Baseline:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = false;
        config.rollbackSupported = false;
        config.dvfsEnabled = false;
        break;
      case Mode::DetectionOnly:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = false;
        config.rollbackSupported = false;
        config.dvfsEnabled = false;
        break;
      case Mode::ParaMedic:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = true;
        config.rollbackSupported = true;
        config.dvfsEnabled = false;
        break;
      case Mode::ParaDox:
        config.adaptiveCheckpoints = true;
        config.lineGranularityRollback = true;
        config.lowestIdScheduling = true;
        config.bufferUncheckedStores = true;
        config.rollbackSupported = true;
        config.dvfsEnabled = false;  // enabled explicitly where used
        break;
    }
    return config;
}

void
SystemConfig::enableEscalation()
{
    escalation.retryVerify = true;
    escalation.quarantineEnabled = true;
    escalation.panicRollbackThreshold = 8;
    escalation.progressWatchdogUs = 50.0;
}

void
SystemConfig::validate() const
{
    if (checkers.count == 0)
        fatal("SystemConfig: checkers.count must be at least 1");
    if (mainFreqHz <= 0.0 || checkers.freqHz <= 0.0)
        fatal("SystemConfig: core frequencies must be positive");
    if (checkpointAimd.minLength == 0 ||
        checkpointAimd.minLength > checkpointAimd.maxLength)
        fatal("SystemConfig: need 0 < checkpoint minLength <= "
              "maxLength");
    if (checkpointAimd.initial > checkpointAimd.maxLength)
        fatal("SystemConfig: checkpoint initial exceeds maxLength");
    if (log.segmentBytes < log.loadEntryBytes ||
        log.segmentBytes < log.storeEntryBytes + log.storeOldValueBytes)
        fatal("SystemConfig: log segment too small for one entry");
    if (voltage.vMinAllowed > voltage.vSafe)
        fatal("SystemConfig: voltage floor above vSafe");
    if (voltage.startVoltage > voltage.vSafe ||
        voltage.startVoltage < voltage.vMinAllowed)
        fatal("SystemConfig: startVoltage outside [vMinAllowed, "
              "vSafe]");
    if (memoryEccFaultRate < 0.0 || memoryEccFaultRate > 1.0 ||
        memoryEccDueRate < 0.0 || memoryEccDueRate > 1.0)
        fatal("SystemConfig: ECC fault rates must be in [0, 1]");
    if (memoryEccDueRate > 0.0 && !rollbackSupported)
        fatal("SystemConfig: the DUE machine-check path needs "
              "rollback support");
    if (escalation.quarantineEnabled) {
        if (escalation.strikesToQuarantine == 0)
            fatal("SystemConfig: strikesToQuarantine must be >= 1");
        if (escalation.strikeWindow < escalation.strikesToQuarantine ||
            escalation.strikeWindow > 32)
            fatal("SystemConfig: strikeWindow must be in "
                  "[strikesToQuarantine, 32]");
    }
    if (escalation.panicRollbackThreshold != 0 &&
        (escalation.backoffUs <= 0.0 ||
         escalation.backoffMaxUs < escalation.backoffUs))
        fatal("SystemConfig: panic backoff needs 0 < backoffUs <= "
              "backoffMaxUs");
    if (escalation.progressWatchdogUs < 0.0)
        fatal("SystemConfig: progressWatchdogUs cannot be negative");
}

} // namespace core
} // namespace paradox
