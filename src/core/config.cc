#include "core/config.hh"

namespace paradox
{
namespace core
{

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Baseline:      return "baseline";
      case Mode::DetectionOnly: return "detection-only";
      case Mode::ParaMedic:     return "paramedic";
      case Mode::ParaDox:       return "paradox";
    }
    return "unknown";
}

SystemConfig
SystemConfig::forMode(Mode mode)
{
    SystemConfig config;
    config.mode = mode;
    switch (mode) {
      case Mode::Baseline:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = false;
        config.rollbackSupported = false;
        config.dvfsEnabled = false;
        break;
      case Mode::DetectionOnly:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = false;
        config.rollbackSupported = false;
        config.dvfsEnabled = false;
        break;
      case Mode::ParaMedic:
        config.adaptiveCheckpoints = false;
        config.lineGranularityRollback = false;
        config.lowestIdScheduling = false;
        config.bufferUncheckedStores = true;
        config.rollbackSupported = true;
        config.dvfsEnabled = false;
        break;
      case Mode::ParaDox:
        config.adaptiveCheckpoints = true;
        config.lineGranularityRollback = true;
        config.lowestIdScheduling = true;
        config.bufferUncheckedStores = true;
        config.rollbackSupported = true;
        config.dvfsEnabled = false;  // enabled explicitly where used
        break;
    }
    return config;
}

} // namespace core
} // namespace paradox
