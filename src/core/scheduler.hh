/**
 * @file
 * Checker-core allocation and power-gating accounting (section IV-C,
 * figures 5 and 12).
 *
 * ParaMedic allocates checker cores round-robin, keeping all sixteen
 * (and their log segments) powered.  ParaDox instead allocates the
 * lowest-indexed free checker, concentrating work on low IDs so that
 * high-ID checkers -- and their logs and L0 I-caches -- can be power
 * gated when demand is low.  To avoid uneven ageing, the identity of
 * "index 0" is rotated at boot (seed-derived here).
 *
 * The scheduler also keeps the per-checker busy-time ledger the
 * power model and figure 12 consume: a checker is "awake" from the
 * moment its slot starts filling until its segment verifies or rolls
 * back.
 */

#ifndef PARADOX_CORE_SCHEDULER_HH
#define PARADOX_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace paradox
{
namespace core
{

/** Allocation policy. */
enum class SchedPolicy : std::uint8_t
{
    RoundRobin,    //!< ParaMedic
    LowestFreeId,  //!< ParaDox
};

/** Checker-core allocator with wake/busy accounting. */
class CheckerScheduler
{
  public:
    CheckerScheduler(unsigned count, SchedPolicy policy,
                     std::uint64_t boot_seed);

    /**
     * Allocate a checker at time @p now.
     * @return logical checker id, or -1 if none is available.
     */
    int allocate(Tick now);

    /** Release checker @p id at time @p now. */
    void release(unsigned id, Tick now);

    /** Number of currently allocated checkers. */
    unsigned busyCount() const { return busyCount_; }

    unsigned count() const { return unsigned(slots_.size()); }

    bool anyFree() const { return busyCount_ < slots_.size(); }

    /**
     * Fraction of [0, @p total) each checker spent awake.  Open
     * intervals are counted up to @p total.
     */
    std::vector<double> wakeRates(Tick total) const;

    /** Wake (power-up) transitions per checker. */
    const std::vector<std::uint64_t> &wakeEvents() const
    {
        return wakeEvents_;
    }

    SchedPolicy policy() const { return policy_; }

    /** Physical index of logical checker @p id (ageing rotation). */
    unsigned physicalId(unsigned id) const;

  private:
    struct Slot
    {
        bool busy = false;
        Tick wakeAt = 0;
    };

    SchedPolicy policy_;
    std::vector<Slot> slots_;
    std::vector<Tick> busyTicks_;
    std::vector<std::uint64_t> wakeEvents_;
    unsigned busyCount_ = 0;
    unsigned rrNext_ = 0;
    unsigned rotation_;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_SCHEDULER_HH
