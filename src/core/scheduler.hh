/**
 * @file
 * Checker-core allocation and power-gating accounting (section IV-C,
 * figures 5 and 12).
 *
 * ParaMedic allocates checker cores round-robin, keeping all sixteen
 * (and their log segments) powered.  ParaDox instead allocates the
 * lowest-indexed free checker, concentrating work on low IDs so that
 * high-ID checkers -- and their logs and L0 I-caches -- can be power
 * gated when demand is low.  To avoid uneven ageing, the identity of
 * "index 0" is rotated at boot (seed-derived here).
 *
 * The scheduler also keeps the per-checker busy-time ledger the
 * power model and figure 12 consume: a checker is "awake" from the
 * moment its slot starts filling until its segment verifies or rolls
 * back.
 *
 * For the fault-escalation ladder the scheduler additionally keeps a
 * per-checker *health* record: every replay outcome attributed to a
 * checker is pushed into a small sliding window, and a checker whose
 * detections cluster (K strikes within the window) is *quarantined*
 * -- retired from the pool, never allocated again.  Real undervolted
 * SRAM faults recur at fixed locations (look permanent), so a
 * checker that keeps flagging divergences is most plausibly the
 * defective side.  The pool degrades gracefully: the last healthy
 * checker can never be quarantined.
 */

#ifndef PARADOX_CORE_SCHEDULER_HH
#define PARADOX_CORE_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace paradox
{
namespace core
{

/** Allocation policy. */
enum class SchedPolicy : std::uint8_t
{
    RoundRobin,    //!< ParaMedic
    LowestFreeId,  //!< ParaDox
};

/** Per-checker health-tracking policy (escalation ladder). */
struct HealthParams
{
    /** Master switch: false records outcomes but never quarantines. */
    bool quarantineEnabled = false;
    /** Strikes within the window that retire a checker. */
    unsigned strikesToQuarantine = 3;
    /** Sliding window length, in replays on that checker. */
    unsigned strikeWindow = 8;
};

/** Checker-core allocator with wake/busy and health accounting. */
class CheckerScheduler
{
  public:
    CheckerScheduler(unsigned count, SchedPolicy policy,
                     std::uint64_t boot_seed);

    /** Install the health/quarantine policy (default: disabled). */
    void setHealthParams(const HealthParams &params)
    {
        health_ = params;
    }

    /**
     * Allocate a checker at time @p now.  Quarantined checkers are
     * never returned.
     * @return logical checker id, or -1 if none is available.
     */
    int allocate(Tick now);

    /** Release checker @p id at time @p now. */
    void release(unsigned id, Tick now);

    /**
     * Record the outcome of one replay attributed to checker @p id
     * (true = the replay flagged a divergence).  May quarantine the
     * checker under the installed policy.
     * @return true iff this outcome caused a quarantine.
     */
    bool recordOutcome(unsigned id, bool detected);

    /** Checker @p id has been retired from the pool. */
    bool quarantined(unsigned id) const;

    /** Checkers retired so far. */
    unsigned quarantinedCount() const { return quarantinedCount_; }

    /** Pool size still in service. */
    unsigned healthyCount() const
    {
        return unsigned(slots_.size()) - quarantinedCount_;
    }

    /** Detection strikes currently in checker @p id's window. */
    unsigned strikeCount(unsigned id) const;

    /** Number of currently allocated checkers. */
    unsigned busyCount() const { return busyCount_; }

    unsigned count() const { return unsigned(slots_.size()); }

    /** A checker is free iff neither busy nor quarantined. */
    bool anyFree() const;

    /**
     * Fraction of [0, @p total) each checker spent awake.  Open
     * intervals are counted up to @p total.
     */
    std::vector<double> wakeRates(Tick total) const;

    /** Wake (power-up) transitions per checker. */
    const std::vector<std::uint64_t> &wakeEvents() const
    {
        return wakeEvents_;
    }

    SchedPolicy policy() const { return policy_; }

    /** Physical index of logical checker @p id (ageing rotation). */
    unsigned physicalId(unsigned id) const;

  private:
    struct Slot
    {
        bool busy = false;
        bool quarantined = false;
        Tick wakeAt = 0;
        /** Sliding outcome window, LSB = most recent replay. */
        std::uint32_t history = 0;
        unsigned historyLen = 0;
    };

    SchedPolicy policy_;
    std::vector<Slot> slots_;
    std::vector<Tick> busyTicks_;
    std::vector<std::uint64_t> wakeEvents_;
    HealthParams health_{};
    unsigned busyCount_ = 0;
    unsigned quarantinedCount_ = 0;
    unsigned rrNext_ = 0;
    unsigned rotation_;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_SCHEDULER_HH
