/**
 * @file
 * Checker-core segment replay: functional re-execution against the
 * load-store log, under fault injection (paper sections II-B, V-A).
 *
 * A checker starts from the segment's starting architectural state
 * and re-executes exactly the committed instruction count.  Loads
 * read the next log entry's value (never main memory); stores compare
 * the computed value against the next entry.  Detection fires on:
 *
 *  - a store comparison mismatch (value, address or size),
 *  - a load consuming a mismatched entry (address/size/kind skew),
 *  - invalid checker behaviour (wild fetch, premature halt,
 *    entry over/under-run) -- figure 7's exception case,
 *  - a watchdog timeout ("any full lockup of a core is detected via
 *    timeout", section II-B), and
 *  - the final architectural-state comparison at segment end.
 *
 * Fault injection perturbs only this replay (checker side), exactly
 * as in the paper's framework.
 */

#ifndef PARADOX_CORE_CHECKER_REPLAY_HH
#define PARADOX_CORE_CHECKER_REPLAY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/lslog.hh"
#include "cpu/checker_timing.hh"
#include "faults/fault_model.hh"
#include "isa/program.hh"

namespace paradox
{
namespace isa
{
class DecodedProgram;
} // namespace isa

namespace analysis
{
class VulnAnalysis;
} // namespace analysis

namespace core
{

/** Why a replay reported a divergence. */
enum class DetectReason : std::uint8_t
{
    None,
    StoreMismatch,
    LoadEntryMismatch,
    InvalidBehavior,
    EntryCountMismatch,
    FinalStateMismatch,
    Timeout,

    NumReasons
};

/** Human-readable detection reason. */
const char *detectReasonName(DetectReason reason);

/** Result of replaying one segment on one checker core. */
struct ReplayOutcome
{
    bool detected = false;
    DetectReason reason = DetectReason::None;
    /** Checker cycles from start to the detection signal. */
    Cycles cyclesAtDetection = 0;
    /** Total checker cycles (== cyclesAtDetection when detected). */
    Cycles totalCycles = 0;
    /** Instructions the checker executed before stopping. */
    unsigned instructionsExecuted = 0;
    /** Faults injected during this replay. */
    std::uint64_t faultsInjected = 0;
    /** Of those, fires attributed to chip-map weak cells. */
    std::uint64_t weakCellHits = 0;
    /** Chip-map indices of the cells that fired (capped sample). */
    std::vector<std::uint32_t> weakSites;
    /**
     * Static ACE verdicts of the injected faults (zero unless a
     * vulnerability model was handed to replaySegment).  deadFaults
     * counts hits at provably-masked sites: they may surface only as
     * a FinalStateMismatch, never as any other detection reason.
     */
    std::uint64_t deadFaults = 0;
    std::uint64_t liveFaults = 0;
    std::uint64_t unknownFaults = 0;
};

/**
 * Replay @p segment of @p prog on checker @p checker_id.
 *
 * @param timing   checker timing model (cycle accounting, L0 I-cache)
 * @param plan     active fault injectors (may be empty)
 * @param final_compare_cycles cost of the end-of-segment register
 *        file comparison
 * @param timeout_factor watchdog: detection fires if the replay
 *        exceeds timeout_factor cycles per logged instruction (plus
 *        a fixed grace allowance).  Sized so that the densest
 *        legitimate segments (divide-heavy FP at ~6 cycles per
 *        instruction, I-cache-thrashing code at ~8) sit far below
 *        it, while corrupted wrong-path execution stuck in divide
 *        chains (32+ cycles per instruction) trips it.  0 disables.
 * @param decoded  optional pre-decoded image of @p prog.  When given
 *        and no fault injectors are active, the replay runs the
 *        threaded-dispatch inner loop (isa/decoded_run.hh) instead of
 *        the per-step reference decoder; every divergence check,
 *        the watchdog and the timing accounting are identical.
 * @param vuln     optional static vulnerability model.  When given,
 *        every firing fault is stamped with the model's verdict for
 *        its site and tallied into ReplayOutcome::deadFaults /
 *        liveFaults / unknownFaults.
 */
ReplayOutcome replaySegment(const isa::Program &prog,
                            const LogSegment &segment,
                            unsigned checker_id,
                            cpu::CheckerTiming &timing,
                            faults::FaultPlan &plan,
                            unsigned final_compare_cycles,
                            unsigned timeout_factor = 24,
                            Addr timing_offset = 0,
                            const isa::DecodedProgram *decoded = nullptr,
                            const analysis::VulnAnalysis *vuln = nullptr);

/**
 * Apply post-commit architectural fault injection for one committed
 * instruction: every firing injector in @p plan corrupts @p state --
 * functional-unit faults flip a bit of the register the instruction
 * just wrote, latch faults flip/stick a bit of the targeted
 * category.  Shared by the main-core commit loop (System) and the
 * checker replay so the two domains interpret a commit record's
 * destination fields identically.
 *
 * @param on_hit optional observer invoked for each firing hit
 *        (tracing, weak-cell accounting); the hit carries the static
 *        verdict for its site when @p vuln is given
 * @param vuln optional vulnerability model for verdict stamping
 * @param inst_idx index of @p inst in its program (verdict lookup)
 * @return the number of faults that fired
 */
std::uint64_t applyInstructionFaults(
    faults::FaultPlan &plan, const isa::Instruction &inst,
    const isa::ExecResult &r, isa::ArchState &state,
    const std::function<void(const faults::FaultHit &)> &on_hit = {},
    const analysis::VulnAnalysis *vuln = nullptr,
    std::size_t inst_idx = 0);

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_CHECKER_REPLAY_HH
