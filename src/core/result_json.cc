#include "core/result_json.hh"

#include <sstream>

namespace paradox
{
namespace core
{

std::string
toJson(const RunResult &result)
{
    std::ostringstream os;
    os << "{";
    os << "\"halted\":" << (result.halted ? "true" : "false");
    os << ",\"instructions\":" << result.instructions;
    os << ",\"executed\":" << result.executed;
    os << ",\"time_fs\":" << result.time;
    os << ",\"seconds\":" << result.seconds();
    os << ",\"checkpoints\":" << result.checkpoints;
    os << ",\"errors_detected\":" << result.errorsDetected;
    os << ",\"rollbacks\":" << result.rollbacks;
    os << ",\"faults_injected\":" << result.faultsInjected;
    os << ",\"retry_verifies\":" << result.retryVerifies;
    os << ",\"retry_saves\":" << result.retrySaves;
    os << ",\"quarantines\":" << result.quarantines;
    os << ",\"panic_resets\":" << result.panicResets;
    os << ",\"watchdog_trips\":" << result.watchdogTrips;
    os << ",\"due_rollbacks\":" << result.dueRollbacks;
    os << ",\"healthy_checkers\":" << result.healthyCheckers;
    os << ",\"avg_voltage\":" << result.avgVoltage;
    os << ",\"avg_power\":" << result.avgPower;
    os << ",\"avg_checkers_awake\":" << result.avgCheckersAwake;
    os << ",\"ckpt_len_p50\":" << result.ckptLenP50;
    os << ",\"ckpt_len_p95\":" << result.ckptLenP95;
    os << ",\"ckpt_len_p99\":" << result.ckptLenP99;
    os << ",\"memory_fingerprint\":\"0x" << std::hex
       << result.memoryFingerprint << std::dec << "\"";
    os << ",\"weak_cell_hits\":" << result.weakCellHits;
    os << ",\"vuln_dead_fired\":" << result.vulnDeadFired;
    os << ",\"vuln_live_fired\":" << result.vulnLiveFired;
    os << ",\"vuln_unknown_fired\":" << result.vulnUnknownFired;
    os << ",\"masked_rollbacks\":" << result.maskedRollbacks;
    os << ",\"masked_detections\":" << result.maskedDetections;
    os << ",\"vuln_dead_divergences\":" << result.vulnDeadDivergences;
    os << ",\"injectors\":[";
    for (std::size_t i = 0; i < result.injectors.size(); ++i) {
        const InjectorCounts &c = result.injectors[i];
        if (i)
            os << ",";
        os << "{\"domain\":\"" << c.domain << "\",\"kind\":\""
           << c.kind << "\",\"persistence\":\"" << c.persistence
           << "\",\"target_checker\":" << c.targetChecker
           << ",\"fired\":" << c.fired
           << ",\"weak_cell_hits\":" << c.weakCellHits
           << ",\"latched\":" << (c.latched ? "true" : "false")
           << "}";
    }
    os << "]";
    os << ",\"wake_rates\":[";
    for (std::size_t i = 0; i < result.wakeRates.size(); ++i) {
        if (i)
            os << ",";
        os << result.wakeRates[i];
    }
    os << "]}";
    return os.str();
}

} // namespace core
} // namespace paradox
