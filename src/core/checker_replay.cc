#include "core/checker_replay.hh"

#include "analysis/vuln.hh"
#include "isa/decoded_run.hh"
#include "isa/executor.hh"
#include "obs/profiler.hh"

namespace paradox
{
namespace core
{

const char *
detectReasonName(DetectReason reason)
{
    switch (reason) {
      case DetectReason::None:               return "none";
      case DetectReason::StoreMismatch:      return "store-mismatch";
      case DetectReason::LoadEntryMismatch:  return "load-entry-mismatch";
      case DetectReason::InvalidBehavior:    return "invalid-behavior";
      case DetectReason::EntryCountMismatch: return "entry-count-mismatch";
      case DetectReason::FinalStateMismatch: return "final-state-mismatch";
      case DetectReason::Timeout:            return "timeout";
      default:                               break;
    }
    return "unknown";
}

namespace
{

/** Record a weak-cell fire in @p outcome (no-op outside chip mode). */
void
noteWeakHit(const faults::FaultHit &hit, ReplayOutcome &outcome)
{
    if (hit.site < 0)
        return;
    ++outcome.weakCellHits;
    if (outcome.weakSites.size() < 16)
        outcome.weakSites.push_back(std::uint32_t(hit.site));
}

/** Corrupt @p value per @p hit: stuck-at (chip mode) or XOR. */
std::uint64_t
applyHit(const faults::FaultHit &hit, std::uint64_t value)
{
    const std::uint64_t mask = std::uint64_t(1) << hit.bit;
    if (hit.hasStuck)
        return hit.stuckValue ? value | mask : value & ~mask;
    return value ^ mask;
}

/** Tally a stamped verdict into the replay counters. */
void
tallyVerdict(std::uint8_t verdict, ReplayOutcome &outcome)
{
    if (verdict == std::uint8_t(analysis::SiteVerdict::Dead))
        ++outcome.deadFaults;
    else if (verdict == std::uint8_t(analysis::SiteVerdict::Live))
        ++outcome.liveFaults;
    else
        ++outcome.unknownFaults;
}

/**
 * Static verdict for an instruction-level hit, replicating exactly
 * how the injection below lands in the register file: functional
 * -unit hits corrupt the just-written destination, register hits go
 * through ArchState::flipBit/writeBit whose index wraps onto x1..x31
 * (integer) or f0..f31 (float).
 */
std::uint8_t
instHitVerdict(const analysis::VulnAnalysis &vuln,
               const faults::FaultInjector &injector,
               const faults::FaultHit &hit, const isa::ExecResult &r,
               std::size_t inst_idx)
{
    using analysis::SiteVerdict;
    SiteVerdict v = SiteVerdict::Unknown;
    if (injector.kind() == faults::FaultKind::FunctionalUnit) {
        if (r.wroteInt)
            v = r.rd == 0 ? SiteVerdict::Dead  // writeX(0) discards
                          : vuln.regBitVerdict(
                                inst_idx, analysis::xslot(r.rd),
                                hit.bit);
        else if (r.wroteFp)
            v = vuln.regBitVerdict(inst_idx, analysis::fslot(r.rd),
                                   hit.bit);
    } else {
        switch (injector.config().targetCategory) {
          case isa::RegCategory::Integer:
            v = vuln.regBitVerdict(
                inst_idx,
                1 + hit.regIndex % (isa::numIntRegs - 1), hit.bit);
            break;
          case isa::RegCategory::Float:
            v = vuln.regBitVerdict(
                inst_idx,
                analysis::fslot(hit.regIndex % isa::numFpRegs),
                hit.bit);
            break;
          default:
            // fflags / pc corruption steers state the analysis does
            // not model bit-wise: stay conservative.
            v = SiteVerdict::Live;
            break;
        }
    }
    return std::uint8_t(v);
}

/**
 * The checker's data path: a queue view over the segment's log
 * entries.  Any skew between the checker's memory behaviour and the
 * recorded stream is a divergence.
 */
class LogReplayMemory : public isa::MemIf
{
  public:
    LogReplayMemory(const LogSegment &segment, faults::FaultPlan &plan,
                    ReplayOutcome *outcome,
                    const analysis::VulnAnalysis *vuln = nullptr)
        : segment_(segment), plan_(plan), outcome_(outcome),
          vuln_(vuln)
    {}

    /**
     * Tell the log which instruction is about to execute, so a log
     * -entry fault during its load can be judged against the static
     * model (the entry's influence depends on the consuming opcode's
     * width, extension and destination liveness).
     */
    void
    setContext(const isa::Instruction *inst, std::size_t inst_idx)
    {
        curInst_ = inst;
        curIdx_ = inst_idx;
    }

    std::uint64_t
    read(Addr addr, unsigned size) override
    {
        const LogEntry *entry = next();
        if (!entry || !entry->isLoad || entry->addr != addr ||
            entry->size != size) {
            diverged_ = true;
            reason_ = DetectReason::LoadEntryMismatch;
            return 0;
        }
        return corrupt(entry->value, true);
    }

    std::uint64_t
    write(Addr addr, unsigned size, std::uint64_t value) override
    {
        const LogEntry *entry = next();
        if (!entry || entry->isLoad || entry->addr != addr ||
            entry->size != size) {
            diverged_ = true;
            reason_ = DetectReason::StoreMismatch;
            return 0;
        }
        const std::uint64_t logged = corrupt(entry->value, false);
        if (logged != value) {
            diverged_ = true;
            reason_ = DetectReason::StoreMismatch;
        }
        return entry->oldValue;
    }

    bool diverged() const { return diverged_; }
    DetectReason reason() const { return reason_; }
    std::size_t consumed() const { return index_; }

  private:
    const LogEntry *
    next()
    {
        if (index_ >= segment_.entries().size())
            return nullptr;
        return &segment_.entries()[index_++];
    }

    std::uint64_t
    corrupt(std::uint64_t value, bool is_load)
    {
        // next() has already advanced, so the entry being consumed
        // is index_ - 1; chip mode maps it onto a physical log row.
        const std::uint64_t entry_index = index_ - 1;
        for (auto &injector : plan_.injectors()) {
            faults::FaultHit hit =
                injector.onLogEntry(is_load, entry_index);
            if (hit.fires) {
                if (vuln_) {
                    // Store entries are always compared at access
                    // width: any value flip is a StoreMismatch.
                    hit.verdict =
                        is_load && curInst_
                            ? std::uint8_t(vuln_->loadEntryVerdict(
                                  *curInst_, curIdx_, hit.bit))
                            : std::uint8_t(analysis::SiteVerdict::Live);
                    tallyVerdict(hit.verdict, *outcome_);
                }
                value = applyHit(hit, value);
                ++outcome_->faultsInjected;
                noteWeakHit(hit, *outcome_);
            }
        }
        return value;
    }

    const LogSegment &segment_;
    faults::FaultPlan &plan_;
    ReplayOutcome *outcome_;
    const analysis::VulnAnalysis *vuln_;
    const isa::Instruction *curInst_ = nullptr;
    std::size_t curIdx_ = 0;
    std::size_t index_ = 0;
    bool diverged_ = false;
    DetectReason reason_ = DetectReason::None;
};

} // namespace

std::uint64_t
applyInstructionFaults(
    faults::FaultPlan &plan, const isa::Instruction &inst,
    const isa::ExecResult &r, isa::ArchState &state,
    const std::function<void(const faults::FaultHit &)> &on_hit,
    const analysis::VulnAnalysis *vuln, std::size_t inst_idx)
{
    std::uint64_t fired = 0;
    for (auto &injector : plan.injectors()) {
        faults::FaultHit hit =
            injector.onInstruction(inst, r.wroteInt || r.wroteFp);
        if (!hit.fires)
            continue;
        ++fired;
        if (vuln)
            hit.verdict =
                instHitVerdict(*vuln, injector, hit, r, inst_idx);
        if (on_hit)
            on_hit(hit);
        if (injector.kind() == faults::FaultKind::FunctionalUnit) {
            // Corrupt the register the instruction just wrote.
            if (r.wroteInt)
                state.writeX(r.rd, applyHit(hit, state.readX(r.rd)));
            else if (r.wroteFp)
                state.writeFBits(r.rd,
                                 applyHit(hit, state.readFBits(r.rd)));
        } else if (hit.hasStuck) {
            state.writeBit(injector.config().targetCategory,
                           hit.regIndex, hit.bit, hit.stuckValue);
        } else {
            state.flipBit(injector.config().targetCategory,
                          hit.regIndex, hit.bit);
        }
    }
    return fired;
}

ReplayOutcome
replaySegment(const isa::Program &prog, const LogSegment &segment,
              unsigned checker_id, cpu::CheckerTiming &timing,
              faults::FaultPlan &plan, unsigned final_compare_cycles,
              unsigned timeout_factor, Addr timing_offset,
              const isa::DecodedProgram *decoded,
              const analysis::VulnAnalysis *vuln)
{
    PARADOX_PROF_SCOPE("checker-replay");
    ReplayOutcome outcome;
    isa::ArchState state = segment.startState();
    // Attribute injected events to this checker so per-checker
    // (pinned permanent/intermittent) fault sources fire only when
    // the defective core is the one replaying.
    plan.setActiveChecker(int(checker_id));
    LogReplayMemory log(segment, plan, &outcome, vuln);

    // Watchdog budget: a healthy replay retires roughly one
    // instruction every few cycles; a corrupted one stuck in
    // expensive wrong-path work (divide chains, I-cache thrash)
    // blows well past this and is killed by the timer.
    const Cycles watchdog =
        timeout_factor == 0
            ? ~Cycles(0)
            : Cycles(timeout_factor) * (segment.instCount() + 16);

    const unsigned count = segment.instCount();
    Cycles cycles = 0;

    if (decoded && plan.empty()) {
        // Fast path: the threaded-dispatch inner loop, devirtualized
        // over the log-replay adapter.  Only taken with no injectors
        // installed -- injectors may corrupt the pc between
        // instructions, which the reference loop re-fetches but the
        // decoded loop's carried indices would not observe.
        isa::runDecoded(
            *decoded, state, log, count,
            [&](const isa::CommitRecord &r) -> bool {
                if (!r.valid) {
                    // Wild fetch: invalid checker behaviour, caught
                    // by the hardware as an exception (figure 7).
                    outcome.detected = true;
                    outcome.reason = DetectReason::InvalidBehavior;
                    return false;
                }
                cycles += timing.instCycles(
                    checker_id, r.pc + timing_offset, *r.inst);
                ++outcome.instructionsExecuted;
                if (log.diverged()) {
                    outcome.detected = true;
                    outcome.reason = log.reason();
                    return false;
                }
                if (r.halted &&
                    outcome.instructionsExecuted != count) {
                    outcome.detected = true;
                    outcome.reason = DetectReason::InvalidBehavior;
                    return false;
                }
                // The reference loop checks the watchdog before each
                // fetch; mirror that between instructions.
                if (outcome.instructionsExecuted != count &&
                    cycles > watchdog) {
                    outcome.detected = true;
                    outcome.reason = DetectReason::Timeout;
                    return false;
                }
                return true;
            });
    } else {
    for (unsigned i = 0; i < count; ++i) {
        if (cycles > watchdog) {
            outcome.detected = true;
            outcome.reason = DetectReason::Timeout;
            break;
        }
        const isa::Instruction *inst = prog.fetch(state.pc());
        if (!inst) {
            // Wild fetch: invalid checker behaviour, caught by the
            // hardware as an exception (paper figure 7).
            outcome.detected = true;
            outcome.reason = DetectReason::InvalidBehavior;
            break;
        }
        cycles += timing.instCycles(checker_id,
                                    state.pc() + timing_offset, *inst);

        const std::size_t inst_idx =
            std::size_t(state.pc() / isa::instBytes);
        log.setContext(inst, inst_idx);
        isa::ExecResult r = isa::step(prog, state, log);
        ++outcome.instructionsExecuted;

        if (log.diverged()) {
            outcome.detected = true;
            outcome.reason = log.reason();
            break;
        }
        if (r.halted && i + 1 != count) {
            outcome.detected = true;
            outcome.reason = DetectReason::InvalidBehavior;
            break;
        }

        // Architectural-state fault injection after the instruction.
        if (!plan.empty())
            outcome.faultsInjected += applyInstructionFaults(
                plan, *inst, r, state,
                [&outcome, vuln](const faults::FaultHit &hit) {
                    noteWeakHit(hit, outcome);
                    if (vuln)
                        tallyVerdict(hit.verdict, outcome);
                },
                vuln, inst_idx);
    }
    }

    if (!outcome.detected) {
        // End-of-segment checks: the entry stream must be exactly
        // consumed and the architectural state must match the
        // checkpoint the main core recorded.
        cycles += final_compare_cycles;
        if (log.consumed() != segment.entries().size()) {
            outcome.detected = true;
            outcome.reason = DetectReason::EntryCountMismatch;
        } else if (!(state == segment.endState())) {
            outcome.detected = true;
            outcome.reason = DetectReason::FinalStateMismatch;
        }
    }

    outcome.cyclesAtDetection = cycles;
    outcome.totalCycles = cycles;
    return outcome;
}

} // namespace core
} // namespace paradox
