/**
 * @file
 * AIMD checkpoint-length controller (paper section IV-A).
 *
 * ParaDox maximizes performance by growing the target instruction
 * window additively (+10 per clean checkpoint, capped at 5,000) and
 * shrinking it multiplicatively on trouble.  On a reduction -- an
 * observed error *or* a pinned-line eviction attempt -- the new
 * target is min(target/2, observed length of the previous
 * checkpoint), which reacts faster than a pure halving when
 * checkpoints were already being cut short (by log capacity, an
 * early-discovered error, or eviction pressure).
 *
 * ParaMedic uses a fixed maximum-length target (errors assumed
 * exceptional), which is what makes it livelock-prone at high error
 * rates (figure 8).
 */

#ifndef PARADOX_CORE_AIMD_HH
#define PARADOX_CORE_AIMD_HH

#include <algorithm>

#include "core/config.hh"

namespace paradox
{
namespace core
{

/** Checkpoint-length controller. */
class CheckpointLengthController
{
  public:
    /**
     * @param params AIMD tuning
     * @param adaptive false models ParaMedic: the target is pinned to
     *        the maximum and never adapts
     */
    CheckpointLengthController(const CheckpointAimdParams &params,
                               bool adaptive)
        : params_(params), adaptive_(adaptive),
          target_(adaptive ? params.initial : params.maxLength)
    {}

    /** Present target instruction window. */
    unsigned target() const { return target_; }

    /** A checkpoint completed without trouble: additive increase. */
    void
    onCleanCheckpoint()
    {
        if (!adaptive_)
            return;
        target_ = std::min(target_ + params_.increment,
                           params_.maxLength);
    }

    /**
     * Trouble: an observed error or a pinned-line eviction attempt.
     * @param observed_length actual length of the previous checkpoint
     */
    void
    onReduction(unsigned observed_length)
    {
        if (!adaptive_)
            return;
        unsigned halved = target_ / 2;
        unsigned next = std::min(halved, observed_length);
        target_ = std::max(next, params_.minLength);
    }

    bool adaptive() const { return adaptive_; }

  private:
    CheckpointAimdParams params_;
    bool adaptive_;
    unsigned target_;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_AIMD_HH
