#include "core/scheduler.hh"

#include <bit>

#include "sim/logging.hh"

namespace paradox
{
namespace core
{

CheckerScheduler::CheckerScheduler(unsigned count, SchedPolicy policy,
                                   std::uint64_t boot_seed)
    : policy_(policy), rotation_(unsigned(boot_seed % count))
{
    if (count == 0)
        fatal("CheckerScheduler: need at least one checker");
    slots_.resize(count);
    busyTicks_.assign(count, 0);
    wakeEvents_.assign(count, 0);
}

int
CheckerScheduler::allocate(Tick now)
{
    int chosen = -1;
    if (policy_ == SchedPolicy::RoundRobin) {
        // ParaMedic proceeds strictly in order: the next index must
        // be free, otherwise the main core waits for it.  With
        // in-order verification the next index is always the oldest.
        // Quarantined indices drop out of the rotation entirely.
        for (unsigned hops = 0;
             hops < slots_.size() && slots_[rrNext_].quarantined;
             ++hops)
            rrNext_ = (rrNext_ + 1) % slots_.size();
        if (!slots_[rrNext_].quarantined && !slots_[rrNext_].busy) {
            chosen = int(rrNext_);
            rrNext_ = (rrNext_ + 1) % slots_.size();
        }
    } else {
        for (unsigned i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].busy && !slots_[i].quarantined) {
                chosen = int(i);
                break;
            }
        }
    }
    if (chosen >= 0) {
        Slot &slot = slots_[unsigned(chosen)];
        slot.busy = true;
        slot.wakeAt = now;
        ++wakeEvents_[unsigned(chosen)];
        ++busyCount_;
    }
    return chosen;
}

void
CheckerScheduler::release(unsigned id, Tick now)
{
    if (id >= slots_.size())
        panic("CheckerScheduler::release: bad id");
    Slot &slot = slots_[id];
    if (!slot.busy)
        panic("CheckerScheduler::release: double release");
    slot.busy = false;
    busyTicks_[id] += now > slot.wakeAt ? now - slot.wakeAt : 0;
    --busyCount_;
}

bool
CheckerScheduler::recordOutcome(unsigned id, bool detected)
{
    if (id >= slots_.size())
        panic("CheckerScheduler::recordOutcome: bad id");
    Slot &slot = slots_[id];
    if (slot.quarantined)
        return false;

    slot.history = (slot.history << 1) | (detected ? 1u : 0u);
    if (slot.historyLen < health_.strikeWindow)
        ++slot.historyLen;
    const std::uint32_t window_mask =
        health_.strikeWindow >= 32
            ? ~std::uint32_t(0)
            : ((std::uint32_t(1) << health_.strikeWindow) - 1);
    slot.history &= window_mask;

    if (!health_.quarantineEnabled || !detected)
        return false;
    if (unsigned(std::popcount(slot.history)) <
        health_.strikesToQuarantine)
        return false;
    // Never retire the last healthy checker: with the pool down to
    // one, checking (and livelock detection via the ladder above the
    // scheduler) must continue on whatever is left.
    if (healthyCount() <= 1)
        return false;
    slot.quarantined = true;
    ++quarantinedCount_;
    return true;
}

bool
CheckerScheduler::quarantined(unsigned id) const
{
    if (id >= slots_.size())
        panic("CheckerScheduler::quarantined: bad id");
    return slots_[id].quarantined;
}

unsigned
CheckerScheduler::strikeCount(unsigned id) const
{
    if (id >= slots_.size())
        panic("CheckerScheduler::strikeCount: bad id");
    return unsigned(std::popcount(slots_[id].history));
}

bool
CheckerScheduler::anyFree() const
{
    for (const Slot &slot : slots_) {
        if (!slot.busy && !slot.quarantined)
            return true;
    }
    return false;
}

std::vector<double>
CheckerScheduler::wakeRates(Tick total) const
{
    std::vector<double> rates(slots_.size(), 0.0);
    if (total == 0)
        return rates;
    for (unsigned i = 0; i < slots_.size(); ++i) {
        Tick busy = busyTicks_[i];
        if (slots_[i].busy && total > slots_[i].wakeAt)
            busy += total - slots_[i].wakeAt;
        rates[i] = double(busy) / double(total);
        if (rates[i] > 1.0)
            rates[i] = 1.0;
    }
    return rates;
}

unsigned
CheckerScheduler::physicalId(unsigned id) const
{
    return (id + rotation_) % unsigned(slots_.size());
}

} // namespace core
} // namespace paradox
