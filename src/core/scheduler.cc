#include "core/scheduler.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace core
{

CheckerScheduler::CheckerScheduler(unsigned count, SchedPolicy policy,
                                   std::uint64_t boot_seed)
    : policy_(policy), rotation_(unsigned(boot_seed % count))
{
    if (count == 0)
        fatal("CheckerScheduler: need at least one checker");
    slots_.resize(count);
    busyTicks_.assign(count, 0);
    wakeEvents_.assign(count, 0);
}

int
CheckerScheduler::allocate(Tick now)
{
    int chosen = -1;
    if (policy_ == SchedPolicy::RoundRobin) {
        // ParaMedic proceeds strictly in order: the next index must
        // be free, otherwise the main core waits for it.  With
        // in-order verification the next index is always the oldest.
        if (!slots_[rrNext_].busy) {
            chosen = int(rrNext_);
            rrNext_ = (rrNext_ + 1) % slots_.size();
        }
    } else {
        for (unsigned i = 0; i < slots_.size(); ++i) {
            if (!slots_[i].busy) {
                chosen = int(i);
                break;
            }
        }
    }
    if (chosen >= 0) {
        Slot &slot = slots_[unsigned(chosen)];
        slot.busy = true;
        slot.wakeAt = now;
        ++wakeEvents_[unsigned(chosen)];
        ++busyCount_;
    }
    return chosen;
}

void
CheckerScheduler::release(unsigned id, Tick now)
{
    if (id >= slots_.size())
        panic("CheckerScheduler::release: bad id");
    Slot &slot = slots_[id];
    if (!slot.busy)
        panic("CheckerScheduler::release: double release");
    slot.busy = false;
    busyTicks_[id] += now > slot.wakeAt ? now - slot.wakeAt : 0;
    --busyCount_;
}

std::vector<double>
CheckerScheduler::wakeRates(Tick total) const
{
    std::vector<double> rates(slots_.size(), 0.0);
    if (total == 0)
        return rates;
    for (unsigned i = 0; i < slots_.size(); ++i) {
        Tick busy = busyTicks_[i];
        if (slots_[i].busy && total > slots_[i].wakeAt)
            busy += total - slots_[i].wakeAt;
        rates[i] = double(busy) / double(total);
        if (rates[i] > 1.0)
            rates[i] = 1.0;
    }
    return rates;
}

unsigned
CheckerScheduler::physicalId(unsigned id) const
{
    return (id + rotation_) % unsigned(slots_.size());
}

} // namespace core
} // namespace paradox
