#include "core/multicore.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace core
{

MulticoreSystem::MulticoreSystem(
    const MulticoreParams &params,
    const std::vector<const isa::Program *> &programs)
    : params_(params),
      uncore_(makeSharedUncore(params.config, params.sharedCheckers))
{
    if (programs.empty())
        fatal("MulticoreSystem: need at least one program");
    for (std::size_t i = 0; i < programs.size(); ++i) {
        SystemConfig config = params_.config;
        // Distinct seeds so per-core fault streams are independent.
        config.seed = params_.config.seed + i * 0x9e3779b9ULL;
        // Distinct physical pages per program (timing path only).
        config.physicalOffset = Addr(i) << 34;
        cores_.push_back(
            std::make_unique<System>(config, *programs[i], &uncore_));
    }
}

void
MulticoreSystem::setFaultPlan(unsigned core, faults::FaultPlan plan)
{
    cores_.at(core)->setFaultPlan(std::move(plan));
}

void
MulticoreSystem::enableDvfs(
    unsigned core, const faults::UndervoltErrorModel::Params &model)
{
    cores_.at(core)->enableDvfs(model);
}

MulticoreResult
MulticoreSystem::run(const RunLimits &limits)
{
    for (auto &core : cores_)
        core->beginRun(limits);

    // Min-time-first interleave: always advance the core whose local
    // clock is furthest behind, so shared-resource accesses occur in
    // simulated-time order.
    for (;;) {
        System *next = nullptr;
        for (auto &core : cores_) {
            if (core->phase() == System::Phase::Done)
                continue;
            if (!next || core->now() < next->now())
                next = core.get();
        }
        if (!next)
            break;
        next->stepOnce();
    }

    MulticoreResult result;
    result.allHalted = true;
    for (auto &core : cores_) {
        result.cores.push_back(core->collectResult());
        result.time = std::max(result.time, result.cores.back().time);
        result.allHalted &= result.cores.back().halted;
    }
    return result;
}

} // namespace core
} // namespace paradox
