/**
 * @file
 * The full heterogeneous fault-tolerant system: one out-of-order main
 * core plus sixteen checker cores, the segmented load-store log,
 * checkpointing, detection, rollback, and (for ParaDox) the adaptive
 * checkpoint-length and voltage controllers.
 *
 * The System executes a program functionally on the main core while
 * accounting timing through the cpu/ and mem/ models; segments are
 * dispatched to checker cores which re-execute them against the log
 * under fault injection.  Detected errors trigger genuine rollback:
 * memory is restored through the log, the architectural state returns
 * to the faulty segment's checkpoint, and the main core re-executes
 * -- so recovery cost is *paid*, not estimated, and the end state of
 * any run is provably the fault-free result (the property the test
 * suite checks).
 */

#ifndef PARADOX_CORE_SYSTEM_HH
#define PARADOX_CORE_SYSTEM_HH

#include <array>
#include <deque>
#include <memory>
#include <optional>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "analysis/effects.hh"
#include "core/aimd.hh"
#include "core/checker_replay.hh"
#include "core/config.hh"
#include "core/dvfs.hh"
#include "core/lslog.hh"
#include "core/scheduler.hh"
#include "cpu/checker_timing.hh"
#include "cpu/main_core.hh"
#include "faults/fault_model.hh"
#include "faults/undervolt_model.hh"
#include "isa/engine.hh"
#include "isa/executor.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "mem/memory.hh"
#include "mem/tlb.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "power/power_model.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace paradox
{
namespace core
{

/** Bounds on one run. */
struct RunLimits
{
    /** Net committed (program-order) instruction bound. */
    std::uint64_t maxInstructions = ~std::uint64_t(0);
    /** Gross executed bound, including rolled-back re-runs. */
    std::uint64_t maxExecuted = ~std::uint64_t(0);
    /** Wall-clock (simulated) bound. */
    Tick maxTicks = maxTick;
};

/** Per-injector accounting, for error attribution in result JSON. */
struct InjectorCounts
{
    const char *domain = "checker"; //!< "checker" or "main"
    const char *kind = "";          //!< fault family name
    const char *persistence = "";
    int targetChecker = -1;         //!< -1 = ambient
    std::uint64_t fired = 0;
    std::uint64_t weakCellHits = 0; //!< chip-mode fires
    bool latched = false;           //!< permanent source stuck
};

/** Summary of one run. */
struct RunResult
{
    bool halted = false;          //!< program ran to completion
    std::uint64_t instructions = 0; //!< net committed
    std::uint64_t executed = 0;     //!< gross, incl. re-runs
    Tick time = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t errorsDetected = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t faultsInjected = 0;
    /** @{ Escalation-ladder event counts (see EscalationParams). */
    std::uint64_t retryVerifies = 0;  //!< second-checker re-verifications
    std::uint64_t retrySaves = 0;     //!< retries that avoided rollback
    std::uint64_t quarantines = 0;    //!< checkers retired from the pool
    std::uint64_t panicResets = 0;    //!< voltage snaps back to v_safe
    std::uint64_t watchdogTrips = 0;  //!< forward-progress escalations
    std::uint64_t dueRollbacks = 0;   //!< double-bit-ECC machine checks
    unsigned healthyCheckers = 0;     //!< pool size left at run end
    /** @} */
    double avgVoltage = 0.0;      //!< time-weighted supply voltage
    double avgPower = 0.0;        //!< normalized (1.0 = baseline nom.)
    double avgCheckersAwake = 0.0;
    /** @{ Checkpoint-length percentiles (from the histogram). */
    double ckptLenP50 = 0.0;
    double ckptLenP95 = 0.0;
    double ckptLenP99 = 0.0;
    /** @} */
    std::vector<double> wakeRates;
    /** Chip-mode fires attributed to weak cells (all domains). */
    std::uint64_t weakCellHits = 0;
    /** Per-injector fired/latched breakdown (checker + main plans). */
    std::vector<InjectorCounts> injectors;
    /** @{ Static-verdict accounting (zero without setVulnModel). */
    std::uint64_t vulnDeadFired = 0;    //!< fired hits at dead sites
    std::uint64_t vulnLiveFired = 0;    //!< fired hits at live sites
    std::uint64_t vulnUnknownFired = 0; //!< model had no claim
    /** Rollbacks whose segment saw only provably-dead faults. */
    std::uint64_t maskedRollbacks = 0;
    /** Detections (incl. retry-saves) from only-dead-fault segments. */
    std::uint64_t maskedDetections = 0;
    /**
     * Soundness violations: a replay of a segment whose every fault
     * was statically dead detected something other than a
     * FinalStateMismatch.  Must be zero for a sound model.
     */
    std::uint64_t vulnDeadDivergences = 0;
    /** @} */
    isa::ArchState finalState;
    std::uint64_t memoryFingerprint = 0;

    double seconds() const { return ticksToSeconds(time); }
};

/**
 * Resources shared between the cores of a multicore system: the L2,
 * DRAM, and (optionally, the paper's section VI-D suggestion) a
 * checker-core pool serving several main cores.
 */
struct SharedUncore
{
    std::unique_ptr<mem::Cache> l2;
    std::unique_ptr<mem::Dram> dram;
    std::unique_ptr<CheckerScheduler> checkers;      //!< optional
    std::unique_ptr<cpu::CheckerTiming> checkerTiming;
};

/**
 * Build a shared uncore from @p config.
 * @param shared_checkers size of a shared checker pool (0 = each
 *        core keeps its private sixteen)
 */
SharedUncore makeSharedUncore(const SystemConfig &config,
                              unsigned shared_checkers = 0);

/** The complete modelled system. */
class System
{
  public:
    System(const SystemConfig &config, const isa::Program &program);

    /**
     * Multicore form: private core/L1s/log over @p uncore's shared
     * L2 + DRAM (and shared checker pool when present).  @p uncore
     * must outlive the System.
     */
    System(const SystemConfig &config, const isa::Program &program,
           SharedUncore *uncore);

    /** Install fixed-rate fault injectors (figures 8/9). */
    void setFaultPlan(faults::FaultPlan plan);

    /**
     * Install fault injectors on the *main core* itself: bits flip in
     * its architectural state as it commits, corrupting subsequent
     * execution, the log, and the recorded checkpoints.  The paper
     * injects into checkers only as a simulation convenience, arguing
     * detection is symmetric; this path makes that argument
     * executable -- clean checker replays catch the corrupted main
     * core and rollback re-executes from the last verified state.
     */
    void setMainCoreFaultPlan(faults::FaultPlan plan);

    /**
     * Enable dynamic voltage adaptation: the controller undervolts
     * the main core and the injection rate follows @p model
     * (figures 10, 11, 13).  Installs a uniform injector pair whose
     * rate is retuned at every checkpoint.
     */
    void enableDvfs(const faults::UndervoltErrorModel::Params &model);

    /**
     * Attach a persistent per-chip fault map: every installed fault
     * plan (checker and main-core, including the one enableDvfs
     * creates) switches to chip-map injection, with per-cell flip
     * probabilities tracking the supply voltage.  Call after the
     * plans are installed; later setFaultPlan/enableDvfs calls
     * re-attach automatically.
     */
    void setChipModel(std::shared_ptr<const faults::ChipModel> chip);

    /**
     * Pin the supply to a fixed undervolted operating point (chip
     * studies without the AIMD controller).  Models margin
     * elimination alone: the voltage moves, the clock stays nominal,
     * and chip-mode flip probabilities follow the new supply.
     * Incompatible with enableDvfs (the controller owns the rail).
     */
    void setSupplyVoltage(double v);

    /**
     * Install a static fault-vulnerability model (live-bit/ACE
     * masks) for the program this System executes.  Every fault that
     * fires -- checker-replay or main-core -- is stamped with the
     * model's verdict for its site, and the run accounts masked
     * rollbacks (recovery spent on provably-dead faults) and
     * soundness violations (a segment whose every fault was
     * statically dead detecting anything but a FinalStateMismatch).
     * nullptr detaches.
     */
    void setVulnModel(std::shared_ptr<const analysis::VulnAnalysis> vuln);

    /**
     * Attach an execution tracer (src/obs/): segment lifecycle,
     * checker replays, detections/rollbacks, escalation events and
     * voltage/frequency tracks are recorded into @p sink, and key
     * runtime metrics are sampled onto counter tracks every
     * @p metrics_interval of simulated time.  @p sink must outlive
     * the System; nullptr detaches.  A no-op (beyond one pointer
     * test per hook) when detached or when compiled with
     * -DPARADOX_TRACING=0.
     */
    void setTracer(obs::TraceSink *sink,
                   Tick metrics_interval = 10 * ticksPerUs);

    /** Execute until HALT or a limit. */
    RunResult run(const RunLimits &limits = RunLimits{});

    /** @{ Incremental execution (multicore interleaving). */
    enum class Phase : std::uint8_t
    {
        Idle,     //!< beginRun() not called yet
        Running,  //!< executing instructions
        Draining, //!< HALT reached; waiting out in-flight checks
        Done,
    };

    /** Reset run state and arm the limits. */
    void beginRun(const RunLimits &limits = RunLimits{});

    /**
     * Advance by one instruction (Running) or one check completion
     * (Draining).  @return false once Done.
     */
    bool stepOnce();

    Phase phase() const { return phase_; }

    /** Current main-core time (interleaving key). */
    Tick now() const { return mainCore_->now(); }

    /** Summarize the finished (or stopped) run. */
    RunResult collectResult();
    /** @} */

    /** @{ Introspection for tests and figure harnesses. */
    const stats::Distribution &rollbackTimesNs() const
    {
        return *rollbackNs_;
    }
    const stats::Distribution &wastedExecNs() const
    {
        return *wastedNs_;
    }
    const stats::Distribution &checkpointLengths() const
    {
        return *ckptLen_;
    }
    const stats::Histogram &checkpointLengthHistogram() const
    {
        return *ckptHist_;
    }
    const stats::TimeSeries &voltageTrace() const { return *voltTrace_; }
    const VoltageController &voltageController() const
    {
        return *voltCtrl_;
    }
    const CheckerScheduler &checkerScheduler() const { return *sched(); }
    const cpu::MainCore &mainCore() const { return *mainCore_; }
    mem::CacheHierarchy &hierarchy() { return *hierarchy_; }
    mem::SimpleMemory &memory() { return memory_; }
    const SystemConfig &config() const { return config_; }
    const power::PowerModel &powerModel() const { return powerModel_; }
    /** Detections attributed to @p reason so far. */
    std::uint64_t
    detectionCount(DetectReason reason) const
    {
        return reasonCounts_[static_cast<std::size_t>(reason)];
    }
    /** Checked-before-proceed drains forced by uncacheable stores. */
    std::uint64_t mmioDrains() const { return mmioDrains_; }
    /** Data-TLB statistics (the redundant main-core translation). */
    const mem::Tlb &dtlb() const { return *dtlb_; }
    /** Memory soft errors transparently corrected by SECDED. */
    std::uint64_t eccCorrected() const { return eccCorrected_; }
    /** @{ Escalation-ladder event counts so far. */
    std::uint64_t retryVerifies() const { return retryVerifies_; }
    std::uint64_t retrySaves() const { return retrySaves_; }
    std::uint64_t quarantines() const { return quarantines_; }
    std::uint64_t panicResets() const { return panicResets_; }
    std::uint64_t watchdogTrips() const { return watchdogTrips_; }
    std::uint64_t dueRollbacks() const { return dueRollbacks_; }
    /** @} */
    /** @} */

    /** Dump all registered statistics. */
    void dumpStats(std::ostream &os) const;

    /** The unified stats registry (text/JSON dump, sampling). */
    const stats::Registry &registry() const { return registry_; }

  private:
    /** A dispatched segment awaiting (in-order) verification. */
    struct PendingCheck
    {
        std::unique_ptr<LogSegment> segment;
        unsigned checkerId = 0;
        Tick startTick = 0;    //!< checker began executing
        Tick finishTick = 0;   //!< checker done (or detection signal)
        bool detected = false;
        Tick detectTick = 0;
        DetectReason reason = DetectReason::None;
        /** @{ Verdict-stamped fault count for this segment (replay +
         *  main-core fill), and how many of them were static-dead. */
        std::uint64_t segFired = 0;
        std::uint64_t segDead = 0;
        /** @} */
    };

    /** @{ Segment lifecycle. */
    bool openSegment();          //!< returns false if it had to stall
    void closeSegmentAndDispatch();
    Tick waitForOldestRelease(Tick now);
    void retireVerifiedUpTo(Tick now);
    /**
     * Stall until every outstanding check completes.  Stops early on
     * a failed check (performing the rollback).
     * @return true if a rollback occurred.
     */
    bool drainChecks();
    /** @} */

    /** True if @p addr falls in the uncacheable window. */
    bool
    isMmio(Addr addr) const
    {
        return config_.mmioSize != 0 && addr >= config_.mmioBase &&
               addr < config_.mmioBase + config_.mmioSize;
    }

    /**
     * Model SECDED events on a loaded value: single-bit upsets are
     * corrected transparently; a double-bit upset is detected but
     * uncorrectable.
     * @return true iff a DUE fired (caller must machine-check).
     */
    bool maybeEccEvent(const isa::CommitRecord &r);

    /**
     * Machine-check response to a detected-but-uncorrectable memory
     * error: roll the open segment back to its checkpoint, restoring
     * memory through the log (which scrubs the poisoned word), and
     * resume from verified state.
     */
    void machineCheckRollback();

    /**
     * Escalation rungs 3/4: snap the voltage island back to v_safe,
     * hold it there for an exponentially growing backoff, and
     * collapse the checkpoint window to its minimum.
     */
    void panicResetVoltage(Tick now);

    /** A segment verified at @p when: feed the progress watchdog. */
    void
    noteForwardProgress(Tick when)
    {
        if (when > lastProgressTick_)
            lastProgressTick_ = when;
    }

    /** Apply main-core fault injection after a committed record. */
    void maybeMainCoreFault(const isa::CommitRecord &r);

    /** @{ Resolve possibly-shared checker resources. */
    CheckerScheduler *sched() { return schedPtr_; }
    const CheckerScheduler *sched() const { return schedPtr_; }
    cpu::CheckerTiming *checkerTiming() { return checkerTimingPtr_; }
    /** @} */

    /** Shared ctor body. */
    void init(SharedUncore *uncore);

    /** One Running-phase instruction; updates phase_. */
    void stepInstruction();

    /**
     * Batched Running-phase commit: run a superblock of decoded
     * micro-ops through the commit pipeline in one runDecoded() pass,
     * without the per-instruction engine round trip.  Only entered
     * when the batch is provably equivalent to single-stepping (no
     * main-core fault plan that could corrupt the carried pc, no
     * pending detection whose firing tick could land mid-batch); a
     * load/store without guaranteed log headroom stops the batch so
     * the exact peeked capacity cut runs in stepInstruction().
     * @return false if nothing committed (caller must single-step).
     */
    bool stepSuperblock();

    /** Shared halt handling once HALT has committed; updates phase_. */
    void noteHaltCommitted();

    /** One Draining-phase wait; updates phase_. */
    void stepDrain();

    /** Append @p r's memory activity to the filling segment. */
    void logResult(const isa::CommitRecord &r);

    /**
     * Log bytes the *next* instruction will consume, from its peeked
     * memory behaviour.  Evaluated before execution so the commit
     * loop can cut the segment at the boundary instead of executing,
     * undoing and re-executing.
     */
    std::size_t bytesNeeded(const isa::MemPeek &p) const;

    /** Capture pre-store line images for line-granularity rollback. */
    void captureLineCopies(const isa::CommitRecord &r);

    /** Handle any detection due at or before @p now. */
    bool processDetections(Tick now);

    /** Roll back to the start of pending index @p idx at @p now. */
    void performRollback(std::size_t idx, Tick now);

    /** Undo one segment's memory writes; returns undo operations. */
    std::uint64_t undoSegmentMemory(const LogSegment &segment);

    /** Per-checkpoint DVFS + power-integration hook. */
    void checkpointHousekeeping();

    /** Integrate power up to @p now at the current operating point. */
    void accumulatePower(Tick now);

    /** Apply controller voltage/frequency at @p now. */
    void applyOperatingPoint(Tick now);

    /** @{ Tracing hooks (single pointer test when detached). */
    bool
    tracing() const
    {
        return obs::tracingCompiledIn && tracer_ != nullptr;
    }

    /** Track carrying checker @p id's replay spans. */
    obs::TrackId
    checkerTrack(unsigned id) const
    {
        return id < trCheckers_.size() ? trCheckers_[id]
                                       : trCheckers_.back();
    }

    /** Close the open fill span (segment ended at @p ts). */
    void traceEndFill(Tick ts);

    /** Record voltage/frequency counter samples at @p ts. */
    void traceOperatingPoint(Tick ts);
    /** @} */

    SystemConfig config_;
    const isa::Program &program_;

    /** Execution engine (config_.engine) for the main core's
     * functional path; owns fetch and decode. */
    std::unique_ptr<isa::Engine> engine_;
    /** Shared decoded image (null with the reference engine); feeds
     * the checker-replay fast path. */
    std::shared_ptr<const isa::DecodedProgram> decodedProg_;
    /** Superblock commits permitted (false under a shared uncore:
     * the multicore interleave needs per-instruction granularity). */
    bool batchingAllowed_ = false;

    mem::SimpleMemory memory_;
    isa::ArchState archState_;
    ClockDomain mainClock_;
    std::unique_ptr<mem::CacheHierarchy> hierarchy_;
    std::unique_ptr<mem::Tlb> dtlb_;
    std::unique_ptr<mem::Tlb> itlb_;
    std::unique_ptr<cpu::MainCore> mainCore_;
    std::unique_ptr<cpu::CheckerTiming> checkerTiming_;
    std::unique_ptr<CheckerScheduler> sched_;
    cpu::CheckerTiming *checkerTimingPtr_ = nullptr;
    CheckerScheduler *schedPtr_ = nullptr;
    CheckpointLengthController ckptCtrl_;
    std::unique_ptr<VoltageController> voltCtrl_;
    std::unique_ptr<Regulator> regulator_;
    faults::FaultPlan faultPlan_;
    faults::FaultPlan mainCoreFaultPlan_;
    std::shared_ptr<const faults::ChipModel> chip_;
    /** Static vulnerability model (null = no verdict stamping). */
    std::shared_ptr<const analysis::VulnAnalysis> vuln_;
    std::optional<faults::UndervoltErrorModel> undervoltModel_;
    power::PowerModel powerModel_;
    power::FrequencyVoltageModel fvModel_;
    power::EnergyAccumulator energy_;

    // Filling segment.
    std::unique_ptr<LogSegment> filling_;
    int fillingChecker_ = -1;
    unsigned instsInSegment_ = 0;
    std::unordered_set<Addr> linesCopiedThisCkpt_;
    /**
     * Sum of the static worst-case log-byte bounds the segment's
     * accesses were admitted under (superblock gate: effect-summary
     * run/uop bounds; single-step path: the exact peeked bytes).
     * Always >= filling_->bytesUsed(); emitted per segment as the
     * "seg-bound-bytes" instant for trace_report --memdep.
     */
    std::uint64_t segBoundBytes_ = 0;
    /** Per-run static log bounds of decodedProg_ (built on demand). */
    std::optional<analysis::EffectSummary> effects_;

    // Dispatched segments, oldest first.
    std::deque<PendingCheck> pending_;
    /** Entries of pending_ with detected == true (gates the
     * per-instruction detection scan). */
    std::size_t detectedPending_ = 0;

    // Run-scoped counters.
    std::uint64_t segSeq_ = 1;
    std::uint64_t netIndex_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t checkpoints_ = 0;
    std::uint64_t rollbacks_ = 0;
    std::uint64_t detections_ = 0;
    std::uint64_t checkerInstructions_ = 0;
    std::uint64_t faultsInjectedTotal_ = 0;
    /** @{ Static-verdict accounting (all zero without vuln_). */
    std::uint64_t vulnDeadFired_ = 0;
    std::uint64_t vulnLiveFired_ = 0;
    std::uint64_t vulnUnknownFired_ = 0;
    std::uint64_t maskedRollbacks_ = 0;
    std::uint64_t maskedDetections_ = 0;
    std::uint64_t deadDivergences_ = 0;
    /** Verdict-stamped main-core fires in the filling segment. */
    std::uint64_t mainFiredInSeg_ = 0;
    std::uint64_t mainDeadInSeg_ = 0;
    /** @} */
    std::array<std::uint64_t,
               static_cast<std::size_t>(DetectReason::NumReasons)>
        reasonCounts_{};
    double awakeTickSum_ = 0.0;
    std::uint64_t mmioDrains_ = 0;
    std::uint64_t eccCorrected_ = 0;
    std::uint64_t eccGap_ = 0;
    std::uint64_t dueGap_ = 0;
    Rng eccRng_{0};
    Tick lastPowerTick_ = 0;
    double currentVoltage_;
    double currentFreq_;

    // Escalation-ladder state.
    std::uint64_t retryVerifies_ = 0;
    std::uint64_t retrySaves_ = 0;
    std::uint64_t quarantines_ = 0;
    std::uint64_t panicResets_ = 0;
    std::uint64_t watchdogTrips_ = 0;
    std::uint64_t dueRollbacks_ = 0;
    unsigned consecutiveRollbacks_ = 0;
    unsigned backoffStage_ = 0;     //!< exponent of the backoff hold
    Tick backoffUntil_ = 0;         //!< undervolting suspended until
    Tick lastProgressTick_ = 0;     //!< last verified-segment retire
    Tick watchdogTicks_ = 0;        //!< 0 = progress watchdog off

    // Incremental-run state.
    Phase phase_ = Phase::Idle;
    RunLimits limits_{};
    bool halted_ = false;

    // Tracing (optional, non-owning).
    obs::TraceSink *tracer_ = nullptr;
    std::unique_ptr<obs::MetricsSampler> metrics_;
    obs::TrackId trMain_ = 0;
    obs::TrackId trSegments_ = 0;
    obs::TrackId trDvfs_ = 0;
    obs::TrackId trFaults_ = 0;
    obs::TrackId trMem_ = 0;
    std::vector<obs::TrackId> trCheckers_;
    bool fillSpanOpen_ = false;

    // Statistics: every stat -- the system-level aggregates below and
    // the component counters (mem.*, main.*, faults.*) published as
    // Gauges -- lives in this one registry; dumpStats and the generic
    // metrics sampling both enumerate it.
    stats::Registry registry_;
    stats::Distribution *rollbackNs_;
    stats::Distribution *wastedNs_;
    stats::Distribution *ckptLen_;
    stats::Histogram *ckptHist_;
    stats::Counter *evictionCuts_;
    stats::Counter *capacityCuts_;
    stats::Counter *targetCuts_;
    stats::Counter *checkerWaitStalls_;
    stats::Counter *retriesStat_;
    stats::Counter *retrySavesStat_;
    stats::Counter *quarantinesStat_;
    stats::Counter *panicResetsStat_;
    stats::Counter *watchdogTripsStat_;
    stats::Counter *dueRollbacksStat_;
    /** @{ Superblock batching visibility (main.sb_*). */
    stats::Counter *sbBatches_;
    stats::Counter *sbUops_;
    stats::Counter *sbGateStops_;
    /** @} */
    stats::TimeSeries *voltTrace_;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_SYSTEM_HH
