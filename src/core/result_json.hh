/**
 * @file
 * JSON serialization of run results, for scripted figure plotting.
 */

#ifndef PARADOX_CORE_RESULT_JSON_HH
#define PARADOX_CORE_RESULT_JSON_HH

#include <string>

#include "core/system.hh"

namespace paradox
{
namespace core
{

/** Serialize @p result as a single JSON object (no trailing newline). */
std::string toJson(const RunResult &result);

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_RESULT_JSON_HH
