/**
 * @file
 * Multicore composition: several main cores (each with private L1s,
 * load-store log and ParaDox machinery) over a shared L2 and DRAM,
 * running a multiprogrammed workload mix.
 *
 * The paper models multicore ParaMedic's dominant cost -- buffering
 * unchecked stores in each core's private L1 -- but evaluates single
 * cores; it *suggests* (section VI-D) that because typical checker
 * demand is well under sixteen, "this could be reduced by half
 * through sharing checker cores between multiple main cores, without
 * affecting performance."  MulticoreSystem makes that suggestion
 * executable: cores can keep private sixteen-checker complexes or
 * draw from one shared pool.
 *
 * Cores are interleaved min-time-first, so accesses to the shared
 * uncore (and allocations from a shared checker pool) happen in
 * simulated-time order.
 */

#ifndef PARADOX_CORE_MULTICORE_HH
#define PARADOX_CORE_MULTICORE_HH

#include <memory>
#include <vector>

#include "core/system.hh"

namespace paradox
{
namespace core
{

/** Multicore configuration. */
struct MulticoreParams
{
    SystemConfig config;        //!< per-core configuration
    /** Shared checker-pool size; 0 keeps private per-core pools. */
    unsigned sharedCheckers = 0;
};

/** Per-run summary for the whole chip. */
struct MulticoreResult
{
    std::vector<RunResult> cores;
    Tick time = 0;              //!< latest core-finish time
    bool allHalted = false;
};

/** N main cores over one shared uncore. */
class MulticoreSystem
{
  public:
    /**
     * @param params chip configuration
     * @param programs one program per core (defines the core count)
     */
    MulticoreSystem(const MulticoreParams &params,
                    const std::vector<const isa::Program *> &programs);

    /** Install a fault plan on core @p core. */
    void setFaultPlan(unsigned core, faults::FaultPlan plan);

    /** Enable DVFS on core @p core (per-core voltage islands). */
    void enableDvfs(unsigned core,
                    const faults::UndervoltErrorModel::Params &model);

    /** Run every core to completion (or its limits). */
    MulticoreResult run(const RunLimits &limits = RunLimits{});

    /** Core access for inspection. */
    System &core(unsigned i) { return *cores_[i]; }
    unsigned coreCount() const { return unsigned(cores_.size()); }

    /** The shared checker pool, if configured. */
    const CheckerScheduler *sharedCheckers() const
    {
        return uncore_.checkers.get();
    }

  private:
    MulticoreParams params_;
    SharedUncore uncore_;
    std::vector<std::unique_ptr<System>> cores_;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_MULTICORE_HH
