#include "core/system.hh"

#include <algorithm>
#include <limits>

#include "analysis/vuln.hh"
#include "core/logbytes.hh"
#include "isa/decoded.hh"
#include "isa/decoded_run.hh"
#include "obs/profiler.hh"
#include "sim/logging.hh"

namespace paradox
{
namespace core
{

System::System(const SystemConfig &config, const isa::Program &program)
    : System(config, program, nullptr)
{
}

System::System(const SystemConfig &config, const isa::Program &program,
               SharedUncore *uncore)
    : config_(config), program_(program), mainClock_(config.mainFreqHz),
      ckptCtrl_(config.checkpointAimd, config.adaptiveCheckpoints),
      powerModel_(power::PowerModel::Params{
          config.voltage.vSafe, config.mainFreqHz, 0.85, 0.05,
          config.checkers.count, 0.02}),
      fvModel_(power::FrequencyVoltageModel::Params{
          config.mainFreqHz, config.voltage.vSafe, 0.45}),
      energy_(powerModel_)
{
    config_.validate();
    engine_ = isa::makeEngine(config_.engine, program_);
    if (engine_->kind() == isa::EngineKind::Decoded)
        decodedProg_ = static_cast<const isa::DecodedEngine &>(*engine_)
                           .decodedPtr();
    // Superblock batching commits many instructions per stepOnce().
    // A multicore interleaves cores min-local-time-first, one
    // stepOnce() at a time, so shared L2/DRAM accesses happen in
    // simulated-time order -- batching would let one core race
    // thousands of instructions ahead of its siblings' clocks.
    batchingAllowed_ = uncore == nullptr;
    if (uncore) {
        hierarchy_ = std::make_unique<mem::CacheHierarchy>(
            config_.hierarchy, mainClock_, uncore->l2.get(),
            uncore->dram.get());
    } else {
        hierarchy_ = std::make_unique<mem::CacheHierarchy>(
            config_.hierarchy, mainClock_);
    }
    dtlb_ = std::make_unique<mem::Tlb>(mem::TlbParams{},
                                       config_.physicalOffset);
    itlb_ = std::make_unique<mem::Tlb>(mem::TlbParams{},
                                       config_.physicalOffset);
    mainCore_ = std::make_unique<cpu::MainCore>(config_.mainCore,
                                                mainClock_, *hierarchy_);
    if (uncore && uncore->checkers) {
        schedPtr_ = uncore->checkers.get();
        checkerTimingPtr_ = uncore->checkerTiming.get();
    } else {
        checkerTiming_ =
            std::make_unique<cpu::CheckerTiming>(config_.checkers);
        sched_ = std::make_unique<CheckerScheduler>(
            config_.checkers.count,
            config_.lowestIdScheduling ? SchedPolicy::LowestFreeId
                                       : SchedPolicy::RoundRobin,
            config_.seed);
        sched_->setHealthParams(
            HealthParams{config_.escalation.quarantineEnabled,
                         config_.escalation.strikesToQuarantine,
                         config_.escalation.strikeWindow});
        schedPtr_ = sched_.get();
        checkerTimingPtr_ = checkerTiming_.get();
    }
    voltCtrl_ = std::make_unique<VoltageController>(config_.voltage);
    regulator_ = std::make_unique<Regulator>(
        config_.voltage.startVoltage,
        config_.voltage.regulatorSlewVoltsPerUs);

    currentVoltage_ = config_.voltage.vSafe;
    currentFreq_ = config_.mainFreqHz;
    eccRng_.seed(config_.seed ^ 0xecc0ecc0ecc0ecc0ULL);
    eccGap_ = eccRng_.geometric(config_.memoryEccFaultRate);
    dueGap_ = eccRng_.geometric(config_.memoryEccDueRate);
    if (config_.escalation.progressWatchdogUs > 0.0)
        watchdogTicks_ = Tick(config_.escalation.progressWatchdogUs *
                              double(ticksPerUs));

    // The "system" group registers first so its classic lines lead
    // the dump, exactly as before the registry migration.
    stats::StatGroup &sys = registry_.group("system");
    rollbackNs_ = &sys.add<stats::Distribution>(
        "rollbackNs", "memory rollback time per recovery (ns)");
    wastedNs_ = &sys.add<stats::Distribution>(
        "wastedExecNs", "execution wasted per recovery (ns)");
    ckptLen_ = &sys.add<stats::Distribution>(
        "checkpointLength", "instructions per checkpoint");
    ckptHist_ = &sys.add<stats::Histogram>(
        "checkpointLengthHist",
        "distribution of instructions per checkpoint", 0.0, 5000.0,
        50);
    evictionCuts_ = &sys.add<stats::Counter>(
        "evictionCuts", "checkpoints cut by pinned-line evictions");
    capacityCuts_ = &sys.add<stats::Counter>(
        "capacityCuts", "checkpoints cut by log capacity");
    targetCuts_ = &sys.add<stats::Counter>(
        "targetCuts", "checkpoints cut by reaching the AIMD target");
    checkerWaitStalls_ = &sys.add<stats::Counter>(
        "checkerWaitStalls", "stalls waiting for a free checker");
    retriesStat_ = &sys.add<stats::Counter>(
        "escalationRetries",
        "flagged segments re-verified on a second checker");
    retrySavesStat_ = &sys.add<stats::Counter>(
        "escalationRetrySaves",
        "re-verifications that retired the segment without rollback");
    quarantinesStat_ = &sys.add<stats::Counter>(
        "escalationQuarantines",
        "checkers retired from the pool by clustered detections");
    panicResetsStat_ = &sys.add<stats::Counter>(
        "escalationPanicResets",
        "voltage-island panic resets to v_safe with backoff");
    watchdogTripsStat_ = &sys.add<stats::Counter>(
        "escalationWatchdogTrips",
        "forward-progress watchdog escalations");
    dueRollbacksStat_ = &sys.add<stats::Counter>(
        "escalationDueRollbacks",
        "machine-check rollbacks from uncorrectable ECC errors");
    voltTrace_ = &sys.add<stats::TimeSeries>(
        "voltage", "main-core supply voltage over time", 200000);

    // Component counters, published as Gauges over the raw members.
    stats::StatGroup &main_g = registry_.group("main");
    mainCore_->registerStats(main_g);
    main_g.add<stats::Gauge>("checkpoints", "checkpoints taken",
                             [this] { return double(checkpoints_); });
    sbBatches_ = &main_g.add<stats::Counter>(
        "sb_batches", "superblock batches that committed progress");
    sbUops_ = &main_g.add<stats::Counter>(
        "sb_uops", "micro-ops committed inside superblock batches");
    sbGateStops_ = &main_g.add<stats::Counter>(
        "sb_gate_stops",
        "superblock batch stops from a gate-refused memory op");
    main_g.add<stats::Gauge>("checkers_busy", "checker cores busy",
                             [this] {
                                 return double(sched()->busyCount());
                             });
    mainCore_->predictor().registerStats(registry_.group("main.bpred"));
    stats::StatGroup &faults_g = registry_.group("faults");
    faults_g.add<stats::Gauge>("rollbacks", "rollback recoveries",
                               [this] { return double(rollbacks_); });
    faults_g.add<stats::Gauge>("detections", "errors detected",
                               [this] { return double(detections_); });
    faults_g.add<stats::Gauge>("injected", "faults injected",
                               [this] {
                                   return double(faultsInjectedTotal_);
                               });
    hierarchy_->registerStats(registry_);
    dtlb_->registerStats(registry_.group("mem.dtlb"));
    itlb_->registerStats(registry_.group("mem.itlb"));

    // Mark the stats the tracer samples periodically.  The series
    // names are the counter-track event names the trace schema has
    // always used, so trace consumers see no rename.
    const auto mark = [this](const char *stat, const char *series) {
        if (stats::Stat *s = registry_.find(stat))
            s->setSeries(series);
        else
            panic("System: sampled stat missing from registry");
    };
    mark("main.committed", "committed");
    mark("main.sb_batches", "sb_batches");
    mark("main.sb_uops", "sb_uops");
    mark("main.sb_gate_stops", "sb_gate_stops");
    mark("main.mispredicts", "mispredicts");
    mark("main.checkpoints", "checkpoints");
    mark("main.checkers_busy", "checkers_busy");
    mark("faults.rollbacks", "rollbacks");
    mark("faults.detections", "detections");
    mark("faults.injected", "faults_injected");
    mark("mem.l1d.misses", "l1d_misses");
    mark("mem.l2.misses", "l2_misses");
    mark("mem.l1d.pinned_lines", "pinned_lines");
    mark("mem.l1d.pinned_blocks", "pinned_blocks");

    mainCore_->setPinnedStallResolver([this](Tick now) -> Tick {
        // An eviction attempt on a fully pinned set: the paper cuts
        // the checkpoint, reduces the AIMD target, and waits for a
        // check to complete (sections II-B, IV-A).
        ++*evictionCuts_;
        if (config_.adaptiveCheckpoints)
            ckptCtrl_.onReduction(std::max(instsInSegment_, 1u));
        if (filling_ && instsInSegment_ > 0)
            closeSegmentAndDispatch();
        Tick t = std::max(now, mainCore_->now());
        if (!pending_.empty()) {
            t = std::max(t, waitForOldestRelease(t));
            if (!pending_.empty() && pending_.front().detected) {
                // The completing check *failed*: rollback happens as
                // soon as control returns to the run loop; free the
                // pins now so the stalled access can proceed (its
                // effects are logged and will be undone).
                hierarchy_->rollbackFrom(pending_.front().segment->id());
            }
        }
        retireVerifiedUpTo(t);
        return t;
    });
}

void
System::setTracer(obs::TraceSink *sink, Tick metrics_interval)
{
    tracer_ = sink;
    metrics_.reset();
    trCheckers_.clear();
    fillSpanOpen_ = false;
    if (!tracing())
        return;

    // Track taxonomy (ids are also the Perfetto sort order): the main
    // core first, then its segment lifecycle, one track per checker,
    // then the DVFS domain, the fault machinery, and memory counters.
    trMain_ = sink->addTrack("main");
    trSegments_ = sink->addTrack("main/segments");
    trCheckers_.reserve(sched()->count());
    for (unsigned i = 0; i < sched()->count(); ++i)
        trCheckers_.push_back(
            sink->addTrack("checker/" + std::to_string(i)));
    trDvfs_ = sink->addTrack("dvfs");
    trFaults_ = sink->addTrack("faults");
    trMem_ = sink->addTrack("mem");

    // Counter tracks come generically from the stats registry: every
    // stat marked with a series name in the ctor becomes a probe,
    // routed to a track by its group prefix.  Adding a sampled metric
    // is now one setSeries call, not a hand-wired probe here.
    metrics_ = std::make_unique<obs::MetricsSampler>(
        *sink, metrics_interval);
    metrics_->probeRegistry(
        registry_, [this](const stats::Stat &s) -> obs::TrackId {
            const std::string &n = s.name();
            if (n.rfind("mem.", 0) == 0)
                return trMem_;
            if (n.rfind("faults.", 0) == 0)
                return trFaults_;
            return trMain_;
        });
}

void
System::traceEndFill(Tick ts)
{
    if (fillSpanOpen_) {
        tracer_->end(trSegments_, "fill", ts);
        fillSpanOpen_ = false;
    }
}

void
System::traceOperatingPoint(Tick ts)
{
    tracer_->counter(trDvfs_, "voltage", ts, currentVoltage_);
    tracer_->counter(trDvfs_, "frequency_ghz", ts,
                     currentFreq_ / 1e9);
}

void
System::setFaultPlan(faults::FaultPlan plan)
{
    plan.validate(sched() ? sched()->count() : config_.checkers.count);
    faultPlan_ = std::move(plan);
    if (chip_) {
        faultPlan_.attachChip(chip_.get());
        faultPlan_.setVoltage(currentVoltage_);
    }
}

void
System::setMainCoreFaultPlan(faults::FaultPlan plan)
{
    plan.validate(sched() ? sched()->count() : config_.checkers.count);
    mainCoreFaultPlan_ = std::move(plan);
    if (chip_) {
        mainCoreFaultPlan_.attachChip(chip_.get());
        mainCoreFaultPlan_.setVoltage(currentVoltage_);
    }
}

void
System::setChipModel(std::shared_ptr<const faults::ChipModel> chip)
{
    chip_ = std::move(chip);
    faultPlan_.attachChip(chip_.get());
    mainCoreFaultPlan_.attachChip(chip_.get());
    if (chip_) {
        faultPlan_.setVoltage(currentVoltage_);
        mainCoreFaultPlan_.setVoltage(currentVoltage_);
    }
}

void
System::setSupplyVoltage(double v)
{
    // A fixed undervolted rail: probabilities move with the supply,
    // the clock deliberately stays nominal (margin elimination
    // without frequency scaling -- the premise being stress-tested).
    currentVoltage_ = v;
    faultPlan_.setVoltage(v);
    mainCoreFaultPlan_.setVoltage(v);
}

void
System::setVulnModel(std::shared_ptr<const analysis::VulnAnalysis> vuln)
{
    vuln_ = std::move(vuln);
}

void
System::maybeMainCoreFault(const isa::CommitRecord &r)
{
    if (mainCoreFaultPlan_.empty())
        return;
    PARADOX_PROF_SCOPE("fault-inject");
    // The corruption logic itself (which register, stuck-at vs flip)
    // is shared with the checker replay: applyInstructionFaults.
    faultsInjectedTotal_ += applyInstructionFaults(
        mainCoreFaultPlan_, *r.inst, r, archState_,
        [this](const faults::FaultHit &hit) {
            if (vuln_) {
                ++mainFiredInSeg_;
                switch (hit.verdict) {
                  case 2:
                    ++mainDeadInSeg_;
                    ++vulnDeadFired_;
                    break;
                  case 1:
                    ++vulnLiveFired_;
                    break;
                  default:
                    ++vulnUnknownFired_;
                    break;
                }
            }
            if (!tracing())
                return;
            tracer_->instant(trFaults_, "main-fault",
                             mainCore_->now(), nullptr,
                             double(hit.bit));
            if (hit.site >= 0)
                tracer_->instant(trFaults_, "weak-cell-hit",
                                 mainCore_->now(), "main",
                                 double(hit.site));
        },
        vuln_.get(), std::size_t(r.pc / isa::instBytes));
}

void
System::enableDvfs(const faults::UndervoltErrorModel::Params &model)
{
    config_.dvfsEnabled = true;
    undervoltModel_.emplace(model);
    faultPlan_ = faults::uniformPlan(0.0, config_.seed);
    currentVoltage_ = config_.voltage.startVoltage;
    if (chip_) {
        faultPlan_.attachChip(chip_.get());
        faultPlan_.setVoltage(currentVoltage_);
    }
}

std::size_t
System::bytesNeeded(const isa::MemPeek &p) const
{
    const analysis::EffectParams params =
        logEffectParams(config_, hierarchy_->lineBytes());
    if (p.isLoad)
        return params.loadEntryBytes;
    if (p.isStore)
        return storeLogBytes(params, p.addr, p.size,
                             [this](std::uint64_t line) {
                                 return linesCopiedThisCkpt_.count(
                                            line) != 0;
                             });
    return 0;
}

void
System::captureLineCopies(const isa::CommitRecord &r)
{
    const unsigned lb = hierarchy_->lineBytes();
    Addr first = r.memAddr & ~Addr(lb - 1);
    Addr last = (r.memAddr + r.memSize - 1) & ~Addr(lb - 1);
    for (Addr line = first; line <= last; line += lb) {
        if (linesCopiedThisCkpt_.count(line))
            continue;
        // Reconstruct the pre-store line image: memory already holds
        // the post-store bytes, so splice the overwritten value back
        // in where the store touched this line.
        std::vector<std::uint8_t> bytes(lb);
        memory_.readBlock(line, bytes.data(), lb);
        for (unsigned i = 0; i < r.memSize; ++i) {
            Addr byte_addr = r.memAddr + i;
            if (byte_addr >= line && byte_addr < line + lb)
                bytes[byte_addr - line] =
                    std::uint8_t(r.storeOld >> (8 * i));
        }
        // The rollback side is addressed physically, "to allow
        // rollback without translation" (section IV-D).
        filling_->appendLineCopy(dtlb_->physical(line), bytes,
                                 config_.log.lineCopyBytes);
        linesCopiedThisCkpt_.insert(line);
    }
}

void
System::logResult(const isa::CommitRecord &r)
{
    const LogParams &log = config_.log;
    if (r.isLoad) {
        filling_->appendLoad(r.memAddr, r.memSize, r.loadValue,
                             log.loadEntryBytes);
    } else if (r.isStore) {
        if (config_.lineGranularityRollback) {
            captureLineCopies(r);
            filling_->appendStore(r.memAddr, r.memSize, r.storeValue,
                                  r.storeOld, log.storeEntryBytes);
        } else {
            unsigned entry = log.storeEntryBytes;
            if (config_.rollbackSupported)
                entry += log.storeOldValueBytes;
            filling_->appendStore(r.memAddr, r.memSize, r.storeValue,
                                  r.storeOld, entry);
        }
    }
}

bool
System::openSegment()
{
    for (;;) {
        retireVerifiedUpTo(mainCore_->now());
        int id = sched()->allocate(mainCore_->now());
        if (id >= 0) {
            fillingChecker_ = id;
            filling_ = std::make_unique<LogSegment>();
            filling_->open(segSeq_++, archState_, netIndex_,
                           mainCore_->now());
            instsInSegment_ = 0;
            segBoundBytes_ = 0;
            mainFiredInSeg_ = 0;
            mainDeadInSeg_ = 0;
            linesCopiedThisCkpt_.clear();
            if (tracing()) {
                tracer_->begin(trSegments_, "fill", mainCore_->now(),
                               filling_->id());
                fillSpanOpen_ = true;
            }
            // Continuity: record the next segment's checker in the
            // previously filled segment (section IV-C).
            if (!pending_.empty())
                pending_.back().segment->setNextCheckerId(id);
            return true;
        }
        ++*checkerWaitStalls_;
        if (tracing())
            tracer_->instant(trMain_, "checker-wait",
                             mainCore_->now());
        if (pending_.empty()) {
            // A shared checker pool exhausted by *other* cores: idle
            // a short quantum and yield so the interleaver can run
            // them (their releases free the pool).  Cannot happen
            // with a private pool -- our own segments would hold it.
            mainCore_->stallUntil(mainCore_->now() +
                                  mainClock_.cyclesToTicks(64));
            return false;
        }
        Tick t = waitForOldestRelease(mainCore_->now());
        mainCore_->stallUntil(t);
        if (processDetections(mainCore_->now())) {
            // Rolled back; checkers freed, loop re-allocates.
            continue;
        }
    }
}

void
System::closeSegmentAndDispatch()
{
    filling_->close(archState_, instsInSegment_, mainCore_->now());
    if (tracing()) {
        traceEndFill(mainCore_->now());
        // Committed-instruction count of the segment just closed;
        // `trace_report --cost` sums these to cross-validate the
        // static min/max dynamic-instruction bounds.
        tracer_->instant(trSegments_, "seg-insts", mainCore_->now(),
                         nullptr, double(instsInSegment_),
                         filling_->id());
        // Actual log bytes vs the static worst-case bound the
        // segment's accesses were admitted under; `trace_report
        // --memdep` asserts actual <= bound on fault-free runs.
        tracer_->instant(trSegments_, "seg-log-bytes",
                         mainCore_->now(), nullptr,
                         double(filling_->bytesUsed()),
                         filling_->id());
        tracer_->instant(trSegments_, "seg-bound-bytes",
                         mainCore_->now(), nullptr,
                         double(segBoundBytes_), filling_->id());
    }
    // Taking the register checkpoint blocks commit (Table I).
    mainCore_->blockCommit(config_.regCheckpointCycles);
    Tick dispatch = mainCore_->now();

    ReplayOutcome out = replaySegment(
        program_, *filling_, unsigned(fillingChecker_), *checkerTiming(),
        faultPlan_, config_.rollback.finalCompareCycles,
        config_.checkerTimeoutFactor, config_.physicalOffset,
        decodedProg_.get(), vuln_.get());
    checkerInstructions_ += out.instructionsExecuted;
    faultsInjectedTotal_ += out.faultsInjected;
    vulnDeadFired_ += out.deadFaults;
    vulnLiveFired_ += out.liveFaults;
    vulnUnknownFired_ += out.unknownFaults;
    // Faults that fired in this segment's window, on either side of
    // the main/checker pair, and how many were statically dead.  The
    // deadness contract: a flip at a provably-masked site may surface
    // only as a FinalStateMismatch (registers dead at segment end are
    // compared anyway) -- any other detection reason from an
    // all-dead-fault segment falsifies the static model.
    std::uint64_t segFired = out.deadFaults + out.liveFaults +
                             out.unknownFaults + mainFiredInSeg_;
    std::uint64_t segDead = out.deadFaults + mainDeadInSeg_;
    const auto deadDivergence = [this](const ReplayOutcome &o,
                                       std::uint64_t fired,
                                       std::uint64_t dead) {
        if (vuln_ && o.detected &&
            o.reason != DetectReason::FinalStateMismatch && fired > 0 &&
            dead == fired)
            ++deadDivergences_;
    };
    deadDivergence(out, segFired, segDead);
    if (tracing() && out.faultsInjected > 0)
        tracer_->instant(trFaults_, "inject", dispatch, nullptr,
                         double(out.faultsInjected), filling_->id());
    if (tracing())
        for (std::uint32_t site : out.weakSites)
            tracer_->instant(trFaults_, "weak-cell-hit", dispatch,
                             nullptr, double(site), filling_->id());

    bool detected = out.detected;
    Cycles total_cycles = out.totalCycles;
    Cycles detect_cycles = out.cyclesAtDetection;

    if (detected && config_.escalation.retryVerify) {
        // Escalation rung 1: detection is symmetric, so before
        // paying a rollback get a second opinion from a different
        // checker.  A clean re-verification proves the log and
        // checkpoints are intact -- the *first checker* erred -- and
        // the segment retires with no recovery cost.
        int retry_id = sched()->allocate(dispatch);
        if (retry_id >= 0) {
            ++retryVerifies_;
            ++*retriesStat_;
            ReplayOutcome retry = replaySegment(
                program_, *filling_, unsigned(retry_id),
                *checkerTiming(), faultPlan_,
                config_.rollback.finalCompareCycles,
                config_.checkerTimeoutFactor, config_.physicalOffset,
                decodedProg_.get(), vuln_.get());
            checkerInstructions_ += retry.instructionsExecuted;
            faultsInjectedTotal_ += retry.faultsInjected;
            vulnDeadFired_ += retry.deadFaults;
            vulnLiveFired_ += retry.liveFaults;
            vulnUnknownFired_ += retry.unknownFaults;
            segFired += retry.deadFaults + retry.liveFaults +
                        retry.unknownFaults;
            segDead += retry.deadFaults;
            // The retry replays the same (possibly main-corrupted)
            // log, so main-side hits stay in its fault population;
            // the first checker's do not.
            deadDivergence(retry,
                           retry.deadFaults + retry.liveFaults +
                               retry.unknownFaults + mainFiredInSeg_,
                           retry.deadFaults + mainDeadInSeg_);
            // The retry starts when the first replay signals.
            const Cycles retry_end =
                detect_cycles + retry.totalCycles;
            sched()->release(unsigned(retry_id),
                             dispatch +
                                 checkerTiming()->cyclesToTicks(
                                     retry_end));
            if (config_.lowestIdScheduling)
                checkerTiming()->powerGated(unsigned(retry_id));
            if (tracing()) {
                const Tick retry_start =
                    dispatch +
                    checkerTiming()->cyclesToTicks(detect_cycles);
                tracer_->complete(
                    checkerTrack(unsigned(retry_id)), "retry-verify",
                    retry_start,
                    checkerTiming()->cyclesToTicks(retry.totalCycles),
                    filling_->id(),
                    retry.detected ? detectReasonName(retry.reason)
                                   : nullptr);
                if (retry.faultsInjected > 0)
                    tracer_->instant(trFaults_, "inject", retry_start,
                                     nullptr,
                                     double(retry.faultsInjected),
                                     filling_->id());
                for (std::uint32_t site : retry.weakSites)
                    tracer_->instant(trFaults_, "weak-cell-hit",
                                     retry_start, nullptr,
                                     double(site), filling_->id());
            }
            if (!retry.detected) {
                // Saved: strike the erring checker, credit the
                // clean one.
                ++retrySaves_;
                ++*retrySavesStat_;
                ++detections_;
                ++reasonCounts_[static_cast<std::size_t>(out.reason)];
                if (vuln_ && segFired > 0 && segDead == segFired)
                    ++maskedDetections_;
                if (tracing())
                    tracer_->instant(trFaults_, "retry-save",
                                     dispatch,
                                     detectReasonName(out.reason),
                                     double(fillingChecker_),
                                     filling_->id());
                if (sched()->recordOutcome(unsigned(fillingChecker_),
                                           true)) {
                    ++quarantines_;
                    ++*quarantinesStat_;
                    if (tracing())
                        tracer_->instant(
                            checkerTrack(unsigned(fillingChecker_)),
                            "quarantine", dispatch);
                }
                sched()->recordOutcome(unsigned(retry_id), false);
                if (config_.dvfsEnabled)
                    voltCtrl_->onError(regulator_->voltageAt(
                        dispatch + checkerTiming()->cyclesToTicks(
                                       detect_cycles)));
                detected = false;
                total_cycles = retry_end;
            } else {
                // Both checkers flagged it: the corruption is on the
                // log/checkpoint side, so neither checker is struck
                // and the ladder proceeds to rollback.
                detected = true;
                detect_cycles += retry.cyclesAtDetection;
                total_cycles = detect_cycles;
            }
        } else if (sched()->recordOutcome(unsigned(fillingChecker_),
                                          true)) {
            // No spare checker for a second opinion: record the
            // strike and fall through to rollback.
            ++quarantines_;
            ++*quarantinesStat_;
            if (tracing())
                tracer_->instant(
                    checkerTrack(unsigned(fillingChecker_)),
                    "quarantine", dispatch);
        }
    } else if (sched()->recordOutcome(unsigned(fillingChecker_),
                                      detected)) {
        ++quarantines_;
        ++*quarantinesStat_;
        if (tracing())
            tracer_->instant(checkerTrack(unsigned(fillingChecker_)),
                             "quarantine", dispatch);
    }

    PendingCheck pc;
    pc.segment = std::move(filling_);
    pc.checkerId = unsigned(fillingChecker_);
    pc.startTick = dispatch;
    pc.finishTick =
        dispatch + checkerTiming()->cyclesToTicks(total_cycles);
    pc.detected = detected;
    pc.detectTick =
        dispatch + checkerTiming()->cyclesToTicks(detect_cycles);
    pc.reason = out.reason;
    pc.segFired = segFired;
    pc.segDead = segDead;

    if (tracing()) {
        // The replay's timing is resolved synchronously, so the whole
        // checker span (and any detection signal) can be recorded
        // now with its future timestamps; the writers sort by time.
        tracer_->complete(checkerTrack(pc.checkerId), "check",
                          pc.startTick,
                          pc.finishTick > pc.startTick
                              ? pc.finishTick - pc.startTick
                              : 0,
                          pc.segment->id(),
                          detected ? detectReasonName(pc.reason)
                                   : nullptr);
        if (detected)
            tracer_->instant(checkerTrack(pc.checkerId), "detect",
                             pc.detectTick,
                             detectReasonName(pc.reason), 0.0,
                             pc.segment->id());
    }

    ckptLen_->sample(double(pc.segment->instCount()));
    ckptHist_->sample(double(pc.segment->instCount()));
    ++checkpoints_;

    if (!detected) {
        consecutiveRollbacks_ = 0;
        if (!out.detected) {
            ckptCtrl_.onCleanCheckpoint();
            if (config_.dvfsEnabled && dispatch >= backoffUntil_) {
                voltCtrl_->onCleanCheckpoint();
                backoffStage_ = 0;
            }
        }
    }
    if (pc.detected)
        ++detectedPending_;
    pending_.push_back(std::move(pc));

    fillingChecker_ = -1;
    instsInSegment_ = 0;
    segBoundBytes_ = 0;
    linesCopiedThisCkpt_.clear();

    checkpointHousekeeping();
}

bool
System::drainChecks()
{
    while (!pending_.empty()) {
        Tick t = waitForOldestRelease(mainCore_->now());
        mainCore_->stallUntil(t);
        if (processDetections(mainCore_->now()))
            return true;
    }
    return false;
}

bool
System::maybeEccEvent(const isa::CommitRecord &r)
{
    if (!r.isLoad)
        return false;
    if (eccGap_ != std::numeric_limits<std::uint64_t>::max() &&
        --eccGap_ == 0) {
        eccGap_ = eccRng_.geometric(config_.memoryEccFaultRate);
        // A single-bit upset in an ECC-protected word: encode the
        // loaded value, flip one codeword bit, and let SECDED repair
        // it.  The corrected data is what the core consumed, so
        // nothing propagates (paper section IV-E's division of
        // labour).
        mem::EccWord word = mem::Secded::encode(r.loadValue);
        mem::Secded::flipBit(word,
                             unsigned(eccRng_.nextBounded(
                                 mem::Secded::codeBits)));
        mem::EccDecode decoded = mem::Secded::decode(word);
        if (decoded.status != mem::EccStatus::Corrected ||
            decoded.data != r.loadValue)
            panic("SECDED failed to repair a single-bit memory upset");
        ++eccCorrected_;
        if (tracing())
            tracer_->instant(trFaults_, "ecc-corrected",
                             mainCore_->now());
    }
    if (dueGap_ != std::numeric_limits<std::uint64_t>::max() &&
        --dueGap_ == 0) {
        dueGap_ = eccRng_.geometric(config_.memoryEccDueRate);
        // A double-bit upset: SECDED detects but cannot correct, so
        // the load raises the machine-check equivalent and the caller
        // rolls the open segment back (section IV-E: DUEs fall to
        // the checkpoint mechanism, not the checkers).
        mem::EccWord word = mem::Secded::encode(r.loadValue);
        unsigned b1 =
            unsigned(eccRng_.nextBounded(mem::Secded::codeBits));
        unsigned b2 =
            unsigned(eccRng_.nextBounded(mem::Secded::codeBits - 1));
        if (b2 >= b1)
            ++b2;
        mem::Secded::flipBit(word, b1);
        mem::Secded::flipBit(word, b2);
        mem::EccDecode decoded = mem::Secded::decode(word);
        if (decoded.status != mem::EccStatus::Uncorrectable)
            panic("SECDED failed to flag a double-bit memory upset");
        return true;
    }
    return false;
}

void
System::machineCheckRollback()
{
    PARADOX_PROF_SCOPE("due-rollback");
    // Detected-but-uncorrectable memory error: discard the open
    // segment and restart it from its checkpoint.  Rollback rewrites
    // every touched location through the log's ECC-protected copies,
    // so the poisoned word is scrubbed on the way back.
    ++dueRollbacks_;
    ++*dueRollbacksStat_;
    Tick now = mainCore_->now();
    accumulatePower(now);
    ++rollbacks_;

    LogSegment &seg = *filling_;
    wastedNs_->sample(ticksToNs(now > seg.startTick()
                                    ? now - seg.startTick()
                                    : 0));
    std::uint64_t ops = undoSegmentMemory(seg);
    const unsigned per_op = config_.lineGranularityRollback
                                ? config_.rollback.cyclesPerLineRestore
                                : config_.rollback.cyclesPerWordUndo;
    Tick cost = mainClock_.cyclesToTicks(Cycles(ops) * per_op);
    rollbackNs_->sample(ticksToNs(cost));

    if (tracing()) {
        tracer_->instant(trFaults_, "ecc-due", now, nullptr, 0.0,
                         seg.id());
        traceEndFill(now);
        tracer_->complete(trMain_, "due-rollback", now, cost,
                          seg.id());
    }

    archState_ = seg.startState();
    netIndex_ = seg.startInstIndex();
    hierarchy_->rollbackFrom(seg.id());

    sched()->release(unsigned(fillingChecker_), now);
    if (config_.lowestIdScheduling)
        checkerTiming()->powerGated(unsigned(fillingChecker_));
    filling_.reset();
    fillingChecker_ = -1;
    instsInSegment_ = 0;
    segBoundBytes_ = 0;
    linesCopiedThisCkpt_.clear();

    mainCore_->resetPipeline(now + cost);
}

Tick
System::waitForOldestRelease(Tick now)
{
    PendingCheck &front = pending_.front();
    if (front.detected) {
        // The check completes by *failing*; the caller handles the
        // rollback once control returns to the run loop.
        return std::max(now, front.detectTick);
    }
    Tick done = std::max(now, front.finishTick);
    hierarchy_->segmentVerified(front.segment->id());
    sched()->release(front.checkerId, done);
    if (config_.lowestIdScheduling)
        checkerTiming()->powerGated(front.checkerId);
    pending_.pop_front();
    noteForwardProgress(done);
    return done;
}

void
System::retireVerifiedUpTo(Tick now)
{
    while (!pending_.empty()) {
        PendingCheck &front = pending_.front();
        if (front.detected || front.finishTick > now)
            break;
        hierarchy_->segmentVerified(front.segment->id());
        sched()->release(front.checkerId, front.finishTick);
        if (config_.lowestIdScheduling)
            checkerTiming()->powerGated(front.checkerId);
        noteForwardProgress(front.finishTick);
        pending_.pop_front();
    }
}

std::uint64_t
System::undoSegmentMemory(const LogSegment &segment)
{
    std::uint64_t ops = 0;
    if (config_.lineGranularityRollback) {
        for (auto it = segment.lineCopies().rbegin();
             it != segment.lineCopies().rend(); ++it) {
            // Restore through the stored ECC words: the copy carries
            // the line's protection bits, decoded on the way back.
            // Line copies hold physical addresses; the backing store
            // is virtual, so invert the (linear) mapping.
            Addr addr = it->lineAddr - config_.physicalOffset;
            for (const mem::EccWord &word : it->eccWords()) {
                mem::EccDecode decoded = mem::Secded::decode(word);
                memory_.write(addr, 8, decoded.data);
                addr += 8;
            }
            ++ops;
        }
    } else {
        for (auto it = segment.entries().rbegin();
             it != segment.entries().rend(); ++it) {
            if (!it->isLoad) {
                memory_.write(it->addr, it->size, it->oldValue);
                ++ops;
            }
        }
    }
    return ops;
}

bool
System::processDetections(Tick now)
{
    if (detectedPending_ == 0)
        return false;
    bool any = false;
    for (;;) {
        std::size_t best = pending_.size();
        Tick best_tick = maxTick;
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].detected &&
                pending_[i].detectTick <= now &&
                pending_[i].detectTick < best_tick) {
                best = i;
                best_tick = pending_[i].detectTick;
            }
        }
        if (best == pending_.size())
            break;
        performRollback(best, std::max(now, best_tick));
        any = true;
        now = mainCore_->now();
    }
    return any;
}

void
System::performRollback(std::size_t idx, Tick stop)
{
    PARADOX_PROF_SCOPE("rollback");
    if (!config_.rollbackSupported)
        panic("detection fired but rollback is unsupported in this mode");

    accumulatePower(stop);

    PendingCheck &pc = pending_[idx];
    LogSegment &seg = *pc.segment;

    ++detections_;
    ++rollbacks_;
    ++reasonCounts_[static_cast<std::size_t>(pc.reason)];
    if (vuln_ && pc.segFired > 0 && pc.segDead == pc.segFired) {
        // Every fault that fired in this segment's window was at a
        // provably-masked site: the whole rollback recovers from
        // corruption that could never reach architectural output.
        ++maskedRollbacks_;
        ++maskedDetections_;
    }
    wastedNs_->sample(ticksToNs(stop > seg.startTick()
                                    ? stop - seg.startTick()
                                    : 0));
    const std::uint64_t faulty_seg_id = seg.id();
    const DetectReason faulty_reason = pc.reason;
    // The detection itself was already recorded on the checker's
    // track when the replay resolved; here only the recovery shows.
    if (tracing())
        traceEndFill(stop);

    // Undo memory newest-first: the filling segment, then every
    // dispatched segment back to (and including) the faulty one.
    std::uint64_t ops = 0;
    if (filling_)
        ops += undoSegmentMemory(*filling_);
    for (std::size_t j = pending_.size(); j-- > idx;)
        ops += undoSegmentMemory(*pending_[j].segment);

    const unsigned per_op = config_.lineGranularityRollback
                                ? config_.rollback.cyclesPerLineRestore
                                : config_.rollback.cyclesPerWordUndo;
    Tick cost = mainClock_.cyclesToTicks(Cycles(ops) * per_op);
    rollbackNs_->sample(ticksToNs(cost));

    // Restore architectural state and cache pins.
    archState_ = seg.startState();
    netIndex_ = seg.startInstIndex();
    hierarchy_->rollbackFrom(seg.id());

    // Controllers.
    ckptCtrl_.onReduction(std::max(seg.instCount(), 1u));
    if (config_.dvfsEnabled)
        voltCtrl_->onError(regulator_->voltageAt(stop));
    ++consecutiveRollbacks_;
    if (config_.escalation.panicRollbackThreshold != 0 &&
        consecutiveRollbacks_ >= config_.escalation.panicRollbackThreshold)
        panicResetVoltage(stop);

    // Release the filling slot and every slot from the faulty
    // segment onward (their data is now dead).
    if (filling_) {
        sched()->release(unsigned(fillingChecker_), stop);
        if (config_.lowestIdScheduling)
            checkerTiming()->powerGated(unsigned(fillingChecker_));
        filling_.reset();
        fillingChecker_ = -1;
        instsInSegment_ = 0;
        segBoundBytes_ = 0;
        linesCopiedThisCkpt_.clear();
    }
    for (std::size_t j = idx; j < pending_.size(); ++j) {
        sched()->release(pending_[j].checkerId,
                        std::min(stop, pending_[j].finishTick));
        if (config_.lowestIdScheduling)
            checkerTiming()->powerGated(pending_[j].checkerId);
    }
    pending_.erase(pending_.begin() + std::ptrdiff_t(idx),
                   pending_.end());
    detectedPending_ = 0;
    for (const PendingCheck &p : pending_)
        if (p.detected)
            ++detectedPending_;

    Tick resume = stop + cost;
    if (tracing()) {
        tracer_->complete(trMain_, "rollback", stop, cost,
                          faulty_seg_id,
                          detectReasonName(faulty_reason));
    }
    mainCore_->resetPipeline(resume);
    applyOperatingPoint(resume);
    voltTrace_->sample(resume, currentVoltage_);
    if (tracing())
        traceOperatingPoint(resume);
}

void
System::panicResetVoltage(Tick now)
{
    // Escalation rung 3: sustained rollbacks (or a watchdog trip)
    // mean the operating point itself is suspect.  Snap the island
    // back to the margined-safe voltage and hold it there for an
    // exponentially growing backoff before undervolting resumes.
    ++panicResets_;
    ++*panicResetsStat_;
    consecutiveRollbacks_ = 0;
    ckptCtrl_.onReduction(1);

    double hold_us = config_.escalation.backoffUs;
    for (unsigned i = 0;
         i < backoffStage_ && hold_us < config_.escalation.backoffMaxUs;
         ++i)
        hold_us *= 2.0;
    hold_us = std::min(hold_us, config_.escalation.backoffMaxUs);
    ++backoffStage_;
    Tick hold_until = now + Tick(hold_us * double(ticksPerUs));
    if (hold_until > backoffUntil_)
        backoffUntil_ = hold_until;

    if (tracing()) {
        tracer_->instant(trDvfs_, "panic-reset", now, nullptr,
                         double(backoffStage_));
        tracer_->complete(trDvfs_, "panic-backoff", now,
                          hold_until > now ? hold_until - now : 0);
    }

    if (config_.dvfsEnabled) {
        voltCtrl_->panicReset();
        applyOperatingPoint(now);
        voltTrace_->sample(now, currentVoltage_);
        if (tracing())
            traceOperatingPoint(now);
    }
}

void
System::applyOperatingPoint(Tick now)
{
    if (!config_.dvfsEnabled)
        return;
    regulator_->setTarget(voltCtrl_->target(), now);
    currentVoltage_ = regulator_->voltageAt(now);
    currentFreq_ = compensatedFrequency(
        config_.mainFreqHz, currentVoltage_, voltCtrl_->target(),
        fvModel_.params().vThreshold);
    mainClock_.setFrequency(currentFreq_);
    if (undervoltModel_) {
        faultPlan_.setAllRates(
            undervoltModel_->perInstructionRate(currentVoltage_));
    }
    if (chip_) {
        // Chip mode: per-cell probabilities track the rail directly.
        faultPlan_.setVoltage(currentVoltage_);
        mainCoreFaultPlan_.setVoltage(currentVoltage_);
    }
}

void
System::accumulatePower(Tick now)
{
    if (now <= lastPowerTick_)
        return;
    const Tick dt = now - lastPowerTick_;

    double checker_power = 0.0;
    if (config_.mode != Mode::Baseline) {
        const unsigned n = sched()->count();
        const unsigned awake =
            config_.lowestIdScheduling ? sched()->busyCount() : n;
        const double per_core =
            powerModel_.params().checkerComplexFraction / n;
        checker_power =
            per_core * (awake +
                        (n - awake) * powerModel_.params().gatedResidual);
        awakeTickSum_ += double(awake) * double(dt);
    }
    energy_.addInterval(dt, currentVoltage_, currentFreq_,
                        checker_power);
    lastPowerTick_ = now;
}

void
System::checkpointHousekeeping()
{
    Tick now = mainCore_->now();
    accumulatePower(now);
    applyOperatingPoint(now);
    if (config_.dvfsEnabled)
        voltTrace_->sample(now, currentVoltage_);
    if (tracing()) {
        if (config_.dvfsEnabled)
            traceOperatingPoint(now);
        metrics_->poll(now);
    }
}

RunResult
System::run(const RunLimits &limits)
{
    beginRun(limits);
    while (stepOnce()) {
    }
    return collectResult();
}

void
System::beginRun(const RunLimits &limits)
{
    engine_->reset(archState_, memory_);
    limits_ = limits;
    halted_ = false;
    lastProgressTick_ = mainCore_->now();
    phase_ = Phase::Running;
    if (tracing()) {
        traceOperatingPoint(mainCore_->now());
        metrics_->sampleAll(mainCore_->now());
    }
}

bool
System::stepOnce()
{
    switch (phase_) {
      case Phase::Running:
        stepInstruction();
        break;
      case Phase::Draining:
        stepDrain();
        break;
      default:
        break;
    }
    return phase_ != Phase::Done && phase_ != Phase::Idle;
}

void
System::stepInstruction()
{
    PARADOX_PROF_SCOPE("step");
    if (netIndex_ >= limits_.maxInstructions ||
        executed_ >= limits_.maxExecuted ||
        mainCore_->now() >= limits_.maxTicks) {
        phase_ = Phase::Done;  // limit stop: no drain, partial result
        return;
    }

    if (config_.mode != Mode::Baseline && watchdogTicks_ != 0) {
        // Escalation rung 4: if no segment has verified in a whole
        // watchdog interval, assume the island is wedged in a
        // detect/rollback livelock and escalate straight to a panic
        // reset.
        const Tick now = mainCore_->now();
        if (now > lastProgressTick_ &&
            now - lastProgressTick_ >= watchdogTicks_) {
            ++watchdogTrips_;
            ++*watchdogTripsStat_;
            if (tracing())
                tracer_->instant(trFaults_, "watchdog-trip", now);
            panicResetVoltage(now);
            lastProgressTick_ = now;
        }
    }

    if (config_.mode != Mode::Baseline) {
        retireVerifiedUpTo(mainCore_->now());
        if (!filling_ && !openSegment())
            return;  // shared pool busy: retry on the next step
        if (instsInSegment_ >= ckptCtrl_.target()) {
            ++*targetCuts_;
            closeSegmentAndDispatch();
            if (!openSegment())
                return;
        }
    }

    // Superblock fast path: commit straight through the decoded
    // image in one pass.  Guarded so it is provably equivalent to
    // single-stepping -- an injected main-core fault could corrupt
    // the pc the batch carries as an index, and a pending detection's
    // firing tick could land mid-batch; both fall back below.
    if (batchingAllowed_ && decodedProg_ && mainCoreFaultPlan_.empty() &&
        detectedPending_ == 0) {
        if (stepSuperblock())
            return;
        // A load/store without guaranteed log headroom: run the
        // exact peek-and-cut path.
    }

    // Peek the next instruction's memory behaviour without executing
    // it: a wild fetch surfaces here, and the segment-capacity cut
    // happens *before* execution (the old path executed, undid the
    // architectural/memory effects, and re-executed into the fresh
    // segment).
    const isa::MemPeek peek = engine_->peekMem(archState_);
    if (!peek.valid) {
        // Only an injected main-core PC corruption can take fetch
        // outside the image.  The corrupted pc is part of the
        // recorded checkpoint, so the clean checker replay is
        // guaranteed to mismatch: cut the segment and let the checks
        // run -- the resulting rollback restores a sane pc.
        if (mainCoreFaultPlan_.empty() || config_.mode == Mode::Baseline)
            panic("System: main core fetched outside the image");
        if (filling_ && instsInSegment_ > 0)
            closeSegmentAndDispatch();
        if (!drainChecks())
            panic("System: wild main-core pc survived checking");
        return;
    }

    if (config_.mode != Mode::Baseline) {
        const std::size_t need = bytesNeeded(peek);
        if (filling_->wouldOverflow(need, config_.log.segmentBytes)) {
            // Cut the segment at the boundary; the instruction
            // executes into the new segment.
            ++*capacityCuts_;
            closeSegmentAndDispatch();
            if (!openSegment())
                return;  // nothing executed; retried next step
        }
    }

    const isa::CommitRecord r = engine_->step(archState_, memory_);

    if (config_.mode != Mode::Baseline) {
        // Re-peeked so a capacity cut just above (which emptied the
        // copied-line set) is reflected: the charge must stay an
        // upper bound on what logResult appends to *this* segment.
        segBoundBytes_ += bytesNeeded(peek);
        logResult(r);
        ++instsInSegment_;
    }

    ++executed_;
    ++netIndex_;
    if (maybeEccEvent(r)) {
        // Machine check: squash the in-flight instruction stream and
        // restart the open segment from its checkpoint.
        machineCheckRollback();
        return;
    }
    // Main-core corruption lands *after* commit: subsequent
    // instructions, the log, and the recorded end-of-segment
    // checkpoint all see it, exactly as a latch upset would.
    maybeMainCoreFault(r);

    const bool mmio_store = r.isStore && isMmio(r.memAddr);
    const std::uint64_t pin_seg =
        (config_.bufferUncheckedStores && filling_ && !mmio_store)
            ? filling_->id()
            : mem::noPin;
    const std::uint64_t stamp = filling_ ? filling_->id() : 0;
    {
        // The main core translates redundantly (section IV-D): the
        // timing path runs on physical addresses, and TLB-miss walks
        // stall the pipeline.  Checkers replay the log's virtual
        // addresses untranslated.
        const mem::Translation ifetch = itlb_->translate(r.pc);
        Addr mem_paddr = r.memAddr;
        unsigned walk_cycles = ifetch.extraCycles;
        if (r.isLoad || r.isStore) {
            const mem::Translation data = dtlb_->translate(r.memAddr);
            mem_paddr = data.paddr;
            walk_cycles += data.extraCycles;
        }
        if (walk_cycles > 0)
            mainCore_->stallUntil(mainCore_->now() +
                                  mainClock_.cyclesToTicks(walk_cycles));
        mainCore_->advance(r, ifetch.paddr, mem_paddr,
                           r.nextPc + config_.physicalOffset, pin_seg,
                           stamp);
    }

    if (config_.mode != Mode::Baseline) {
        if (mmio_store) {
            // Uncacheable stores update external state and must be
            // checked before they proceed: cut the checkpoint here
            // and drain every outstanding check.  If one fails, the
            // rollback rewinds past this store and it re-executes.
            ++mmioDrains_;
            if (tracing())
                tracer_->instant(trMain_, "mmio-drain",
                                 mainCore_->now());
            if (filling_ && instsInSegment_ > 0)
                closeSegmentAndDispatch();
            drainChecks();
        } else {
            processDetections(mainCore_->now());
        }
    }

    if (r.halted)
        noteHaltCommitted();
}

void
System::noteHaltCommitted()
{
    if (config_.mode == Mode::Baseline) {
        halted_ = true;
        phase_ = Phase::Done;
        return;
    }
    // Close (or return) the trailing segment, then wait out the
    // in-flight checks one completion at a time.
    if (filling_ && instsInSegment_ > 0) {
        closeSegmentAndDispatch();
    } else if (filling_) {
        sched()->release(unsigned(fillingChecker_), mainCore_->now());
        if (config_.lowestIdScheduling)
            checkerTiming()->powerGated(unsigned(fillingChecker_));
        if (tracing())
            traceEndFill(mainCore_->now());
        filling_.reset();
        fillingChecker_ = -1;
    }
    phase_ = Phase::Draining;
}

bool
System::stepSuperblock()
{
    PARADOX_PROF_SCOPE("dispatch");
    // Bound the batch so target cuts and instruction limits land on
    // exactly the boundaries the single-step path would produce.
    std::uint64_t max_uops =
        std::min(limits_.maxInstructions - netIndex_,
                 limits_.maxExecuted - executed_);
    if (config_.mode != Mode::Baseline) {
        const unsigned target = ckptCtrl_.target();
        if (instsInSegment_ >= target)
            return false;
        max_uops = std::min<std::uint64_t>(max_uops,
                                           target - instsInSegment_);
    }
    if (max_uops == 0)
        return false;

    // Static per-run effect summary of the decoded image: exact
    // worst-case log bytes per micro-op and per straight-line run
    // tail.  decodedProg_ is fixed at construction, so one build
    // serves the whole run.
    if (!effects_)
        effects_ = analysis::EffectSummary::build(
            *decodedProg_,
            logEffectParams(config_, hierarchy_->lineBytes()));
    const analysis::EffectSummary &ef = *effects_;
    const std::size_t seg_cap = config_.log.segmentBytes;

    bool stopped = false;   // the sink handled a phase change itself
    bool progressed = false;
    std::uint64_t batch_uops = 0;

    // Byte-budget admission: when the whole remaining run fits the
    // open segment's headroom its tail bound is reserved once and
    // later memory ops in the run just draw the budget down -- so
    // batches run through segment tails instead of stopping at the
    // first op the old single-op-worst-case check could not clear.
    // When the tail does not fit, fall back to admitting one op at a
    // time under its own (kind- and size-exact) bound.  The budget
    // never outlives the batch: only the sink below appends to the
    // log while it is live, and every append is <= its op bound.
    std::uint64_t budget = 0;
    auto gate = [&](std::uint64_t idx) -> bool {
        if (!filling_)
            return true;
        const std::uint64_t op = ef.uopBound(idx);
        if (budget >= op) {
            budget -= op;
            return true;
        }
        const std::uint64_t tail = ef.tailBound(idx);
        if (!filling_->wouldOverflow(tail, seg_cap)) {
            segBoundBytes_ += tail;
            budget = tail - op;
            return true;
        }
        if (!filling_->wouldOverflow(op, seg_cap)) {
            segBoundBytes_ += op;
            return true;
        }
        ++*sbGateStops_;
        return false;
    };

    // Per-record commit pipeline: the same sequence stepInstruction
    // runs, minus the no-ops its entry conditions rule out (an empty
    // main-core fault plan and no pending detections).
    auto sink = [&](const isa::CommitRecord &r) -> bool {
        if (!r.valid)
            panic("System: main core fetched outside the image");
        if (config_.mode != Mode::Baseline) {
            logResult(r);
            ++instsInSegment_;
        }
        ++executed_;
        ++netIndex_;
        ++batch_uops;
        progressed = true;
        if (maybeEccEvent(r)) {
            machineCheckRollback();
            stopped = true;
            return false;
        }
        const bool mmio_store = r.isStore && isMmio(r.memAddr);
        const std::uint64_t pin_seg =
            (config_.bufferUncheckedStores && filling_ && !mmio_store)
                ? filling_->id()
                : mem::noPin;
        const std::uint64_t stamp = filling_ ? filling_->id() : 0;
        {
            const mem::Translation ifetch = itlb_->translate(r.pc);
            Addr mem_paddr = r.memAddr;
            unsigned walk_cycles = ifetch.extraCycles;
            if (r.isLoad || r.isStore) {
                const mem::Translation data =
                    dtlb_->translate(r.memAddr);
                mem_paddr = data.paddr;
                walk_cycles += data.extraCycles;
            }
            if (walk_cycles > 0)
                mainCore_->stallUntil(
                    mainCore_->now() +
                    mainClock_.cyclesToTicks(walk_cycles));
            mainCore_->advance(r, ifetch.paddr, mem_paddr,
                               r.nextPc + config_.physicalOffset,
                               pin_seg, stamp);
        }
        if (config_.mode != Mode::Baseline && mmio_store) {
            ++mmioDrains_;
            if (tracing())
                tracer_->instant(trMain_, "mmio-drain",
                                 mainCore_->now());
            if (filling_ && instsInSegment_ > 0)
                closeSegmentAndDispatch();
            drainChecks();
            stopped = true;
            return false;
        }
        if (r.halted) {
            noteHaltCommitted();
            stopped = true;
            return false;
        }
        // Tick limit: stop so the next stepInstruction() entry check
        // ends the run before anything else commits, exactly as the
        // single-step path would.
        return mainCore_->now() < limits_.maxTicks;
    };

    const isa::RunStop stop = isa::runDecoded(
        *decodedProg_, archState_, memory_, max_uops, sink, gate);
    if (progressed) {
        ++*sbBatches_;
        *sbUops_ += batch_uops;
    }
    if (stopped)
        return true;
    if (stop == isa::RunStop::MemNext && !progressed)
        return false;
    return true;
}

void
System::stepDrain()
{
    PARADOX_PROF_SCOPE("drain");
    if (pending_.empty()) {
        halted_ = true;
        phase_ = Phase::Done;
        return;
    }
    Tick t = waitForOldestRelease(mainCore_->now());
    mainCore_->stallUntil(t);
    if (processDetections(mainCore_->now())) {
        // A late detection rolled execution back before the HALT:
        // resume the main loop from the restored state.
        phase_ = Phase::Running;
    }
}

RunResult
System::collectResult()
{
    Tick end = mainCore_->now();
    accumulatePower(end);

    if (tracing()) {
        metrics_->sampleAll(end);
        if (config_.dvfsEnabled)
            traceOperatingPoint(end);
    }

    RunResult result;
    result.halted = halted_;
    result.instructions = netIndex_;
    result.executed = executed_;
    result.time = end;
    result.checkpoints = checkpoints_;
    result.errorsDetected = detections_;
    result.rollbacks = rollbacks_;
    result.faultsInjected = faultsInjectedTotal_;
    result.avgVoltage = energy_.averageVoltage();
    result.avgPower = energy_.averagePower();
    result.avgCheckersAwake =
        end > 0 ? awakeTickSum_ / double(end) : 0.0;
    result.ckptLenP50 = ckptHist_->p50();
    result.ckptLenP95 = ckptHist_->p95();
    result.ckptLenP99 = ckptHist_->p99();
    result.wakeRates = sched()->wakeRates(end);
    result.retryVerifies = retryVerifies_;
    result.retrySaves = retrySaves_;
    result.quarantines = quarantines_;
    result.panicResets = panicResets_;
    result.watchdogTrips = watchdogTrips_;
    result.dueRollbacks = dueRollbacks_;
    result.healthyCheckers = sched()->healthyCount();
    result.weakCellHits = faultPlan_.totalWeakCellHits() +
                          mainCoreFaultPlan_.totalWeakCellHits();
    result.vulnDeadFired = vulnDeadFired_;
    result.vulnLiveFired = vulnLiveFired_;
    result.vulnUnknownFired = vulnUnknownFired_;
    result.maskedRollbacks = maskedRollbacks_;
    result.maskedDetections = maskedDetections_;
    result.vulnDeadDivergences = deadDivergences_;
    const auto describe = [&result](const faults::FaultPlan &plan,
                                    const char *domain) {
        for (const auto &injector : plan.injectors()) {
            InjectorCounts counts;
            counts.domain = domain;
            counts.kind = faults::faultKindName(injector.kind());
            counts.persistence = faults::persistenceName(
                injector.config().persistence);
            counts.targetChecker = injector.config().targetChecker;
            counts.fired = injector.fired();
            counts.weakCellHits = injector.weakCellHits();
            counts.latched = injector.latched();
            result.injectors.push_back(counts);
        }
    };
    describe(faultPlan_, "checker");
    describe(mainCoreFaultPlan_, "main");
    result.finalState = archState_;
    result.memoryFingerprint = memory_.fingerprint();
    return result;
}

SharedUncore
makeSharedUncore(const SystemConfig &config, unsigned shared_checkers)
{
    SharedUncore uncore;
    uncore.l2 = std::make_unique<mem::Cache>(config.hierarchy.l2);
    uncore.dram = std::make_unique<mem::Dram>(config.hierarchy.dram);
    if (shared_checkers > 0) {
        cpu::CheckerParams checker_params = config.checkers;
        checker_params.count = shared_checkers;
        uncore.checkerTiming =
            std::make_unique<cpu::CheckerTiming>(checker_params);
        uncore.checkers = std::make_unique<CheckerScheduler>(
            shared_checkers,
            config.lowestIdScheduling ? SchedPolicy::LowestFreeId
                                      : SchedPolicy::RoundRobin,
            config.seed);
        uncore.checkers->setHealthParams(
            HealthParams{config.escalation.quarantineEnabled,
                         config.escalation.strikesToQuarantine,
                         config.escalation.strikeWindow});
    }
    return uncore;
}

void
System::dumpStats(std::ostream &os) const
{
    registry_.dump(os);
}

} // namespace core
} // namespace paradox
