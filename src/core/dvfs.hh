/**
 * @file
 * Dynamic voltage adaptation (paper section IV-B, figure 11).
 *
 * Three cooperating pieces:
 *
 *  - VoltageController: AIMD on the main core's supply target.  Clean
 *    checkpoints lower the target by a small step; an error moves the
 *    target back toward the known-safe voltage by multiplying the
 *    (safe - current) gap by 0.875.  A *tide mark* records the
 *    highest voltage at which an error has been seen; below it the
 *    downward step slows by 8x (ParaDox spends more time in
 *    error-seeking regions before re-provoking errors).  The tide
 *    mark resets every 100 errors so a phase change back to a more
 *    tolerant region can be rediscovered.  The dynamic slowdown can
 *    be disabled to model the "constant decrease" line of figure 11.
 *
 *  - Regulator: a slew-rate-limited supply that tracks the target;
 *    sudden target jumps (after an error) become a ramp, avoiding
 *    modelled voltage spikes.
 *
 *  - Frequency compensation: while the regulator's actual voltage is
 *    below the controller target, the clock is scaled by
 *    f = f_target * (v_current - v_th) / (v_target - v_th).
 */

#ifndef PARADOX_CORE_DVFS_HH
#define PARADOX_CORE_DVFS_HH

#include <algorithm>
#include <cstdint>

#include "core/config.hh"
#include "sim/types.hh"

namespace paradox
{
namespace core
{

/** AIMD supply-voltage target controller. */
class VoltageController
{
  public:
    explicit VoltageController(const VoltageAimdParams &params);

    /** Present target voltage. */
    double target() const { return target_; }

    /** Clean checkpoint: push the target downward. */
    void onCleanCheckpoint();

    /** An error was detected while running at @p v_at_error volts. */
    void onError(double v_at_error);

    /**
     * Escalation-ladder panic: snap the target back to the known-
     * safe margined voltage (the island re-undervolts from scratch
     * once the caller's backoff expires).  Counts as an error for
     * the tide-mark bookkeeping at the present target.
     */
    void panicReset();

    /** Panic resets performed so far. */
    std::uint64_t panicResets() const { return panicResets_; }

    /** Highest voltage at which an error has been seen (tide mark). */
    double tideMark() const { return tideMark_; }

    /** Errors seen since the last tide reset. */
    unsigned errorsSinceReset() const { return errorsSinceReset_; }

    /** Highest error voltage ever observed (figure 11 reference). */
    double highestErrorVoltage() const { return highestErrorEver_; }

    std::uint64_t totalErrors() const { return totalErrors_; }

    const VoltageAimdParams &params() const { return params_; }

  private:
    VoltageAimdParams params_;
    double target_;
    double tideMark_ = 0.0;       //!< 0 = no tide recorded yet
    double highestErrorEver_ = 0.0;
    unsigned errorsSinceReset_ = 0;
    std::uint64_t totalErrors_ = 0;
    std::uint64_t panicResets_ = 0;
};

/** Slew-rate-limited voltage regulator. */
class Regulator
{
  public:
    Regulator(double initial_volts, double slew_volts_per_us);

    /** Change the tracking target as of time @p now. */
    void setTarget(double volts, Tick now);

    /** Actual supply voltage at time @p now (advances state). */
    double voltageAt(Tick now);

    double targetVolts() const { return target_; }

  private:
    double current_;
    double target_;
    double slewPerTick_;
    Tick lastUpdate_ = 0;
};

/**
 * Frequency the core may run at right now: nominal when the supply
 * has reached (or overshoots) the target, scaled down while the
 * regulator is still below it.
 */
double compensatedFrequency(double f_nominal, double v_current,
                            double v_target, double v_threshold);

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_DVFS_HH
