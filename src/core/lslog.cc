#include "core/lslog.hh"

#include <algorithm>

namespace paradox
{
namespace core
{

void
LogSegment::open(std::uint64_t id, const isa::ArchState &start,
                 std::uint64_t start_inst_index, Tick start_tick)
{
    id_ = id;
    startState_ = start;
    endState_ = start;
    startInstIndex_ = start_inst_index;
    startTick_ = start_tick;
    closeTick_ = start_tick;
    instCount_ = 0;
    entries_.clear();
    lines_.clear();
    bytesUsed_ = 0;
    nextCheckerId_ = -1;
}

void
LogSegment::close(const isa::ArchState &end, unsigned inst_count,
                  Tick close_tick)
{
    endState_ = end;
    instCount_ = inst_count;
    closeTick_ = close_tick;
}

void
LogSegment::appendLoad(Addr addr, unsigned size, std::uint64_t value,
                       unsigned entry_bytes)
{
    entries_.push_back(
        LogEntry{true, std::uint8_t(size), addr, value, 0});
    bytesUsed_ += entry_bytes;
}

void
LogSegment::appendStore(Addr addr, unsigned size, std::uint64_t value,
                        std::uint64_t old_value, unsigned entry_bytes)
{
    entries_.push_back(
        LogEntry{false, std::uint8_t(size), addr, value, old_value});
    bytesUsed_ += entry_bytes;
}

std::vector<mem::EccWord>
LineCopy::eccWords() const
{
    std::vector<mem::EccWord> ecc;
    ecc.reserve(bytes.size() / 8);
    for (std::size_t i = 0; i + 8 <= bytes.size(); i += 8) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < 8; ++b)
            word |= std::uint64_t(bytes[i + b]) << (8 * b);
        ecc.push_back(mem::Secded::encode(word));
    }
    return ecc;
}

void
LogSegment::appendLineCopy(Addr line_addr,
                           const std::vector<std::uint8_t> &bytes,
                           unsigned copy_bytes)
{
    lines_.push_back(LineCopy{line_addr, bytes});
    bytesUsed_ += copy_bytes;
}

bool
LogSegment::hasLineCopy(Addr line_addr) const
{
    return std::any_of(lines_.begin(), lines_.end(),
                       [line_addr](const LineCopy &copy) {
                           return copy.lineAddr == line_addr;
                       });
}

} // namespace core
} // namespace paradox
