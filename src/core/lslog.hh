/**
 * @file
 * The segmented load-store log (paper figure 1 / section II-B).
 *
 * The log is the checker cores' entire data-side view of the world:
 * every load the main core commits deposits (address, value); every
 * store deposits (address, new value) -- plus the overwritten value
 * under ParaMedic's word-granularity rollback.  Under ParaDox the
 * rollback data is instead kept as whole cache-line copies (with
 * their ECC) filling the segment from the opposite end (figure 6),
 * and a segment is full when the two indices would meet.
 *
 * Each checker core owns one 6 KiB log segment (Table I); a segment
 * is bound to its checker from the moment the main core starts
 * filling it until the segment verifies (or rolls back), because its
 * contents are what rollback of *younger* errors needs.
 */

#ifndef PARADOX_CORE_LSLOG_HH
#define PARADOX_CORE_LSLOG_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "isa/arch_state.hh"
#include "mem/secded.hh"
#include "sim/types.hh"

namespace paradox
{
namespace core
{

/** One detection-side entry: a committed load or store. */
struct LogEntry
{
    bool isLoad;
    std::uint8_t size;
    Addr addr;
    std::uint64_t value;     //!< loaded value / stored value
    std::uint64_t oldValue;  //!< overwritten value (word rollback)
};

/** One rollback-side cache-line copy (ParaDox, section IV-D). */
struct LineCopy
{
    Addr lineAddr;
    std::vector<std::uint8_t> bytes;       //!< pre-write line image

    /**
     * The line's per-64-bit ECC words, reproducing the exact bits
     * the cache would have held alongside the data.  Encoded on
     * demand: most copies are discarded when their segment verifies,
     * and only a rollback (or an explicit ECC audit) ever reads the
     * protection bits, so paying Secded::encode at capture time for
     * every store's line would be pure overhead on the common path.
     */
    std::vector<mem::EccWord> eccWords() const;
};

/**
 * One run-time segment: the unit of checking, checkpointing and
 * rollback.
 */
class LogSegment
{
  public:
    /** Reset to an empty segment starting from @p start. */
    void open(std::uint64_t id, const isa::ArchState &start,
              std::uint64_t start_inst_index, Tick start_tick);

    /** @{ Identity and boundary state. */
    std::uint64_t id() const { return id_; }
    const isa::ArchState &startState() const { return startState_; }
    const isa::ArchState &endState() const { return endState_; }
    std::uint64_t startInstIndex() const { return startInstIndex_; }
    Tick startTick() const { return startTick_; }
    Tick closeTick() const { return closeTick_; }
    unsigned instCount() const { return instCount_; }
    /** @} */

    /** Record the close boundary. */
    void close(const isa::ArchState &end, unsigned inst_count,
               Tick close_tick);

    /** @{ Detection-side entries, in commit order. */
    void appendLoad(Addr addr, unsigned size, std::uint64_t value,
                    unsigned entry_bytes);
    void appendStore(Addr addr, unsigned size, std::uint64_t value,
                     std::uint64_t old_value, unsigned entry_bytes);
    const std::vector<LogEntry> &entries() const { return entries_; }
    /** @} */

    /** @{ Rollback-side line copies (ParaDox). */
    void appendLineCopy(Addr line_addr,
                        const std::vector<std::uint8_t> &bytes,
                        unsigned copy_bytes);
    const std::vector<LineCopy> &lineCopies() const { return lines_; }
    /** True if this checkpoint already copied @p line_addr. */
    bool hasLineCopy(Addr line_addr) const;
    /** @} */

    /** Bytes consumed by both sides. */
    std::size_t bytesUsed() const { return bytesUsed_; }

    /** True if @p extra_bytes more would overflow @p capacity. */
    bool
    wouldOverflow(std::size_t extra_bytes, std::size_t capacity) const
    {
        return bytesUsed_ + extra_bytes > capacity;
    }

    /**
     * Continuity link: id of the checker scheduled for the *next*
     * segment, stored at the end of this one (section IV-C).
     */
    void setNextCheckerId(int id) { nextCheckerId_ = id; }
    int nextCheckerId() const { return nextCheckerId_; }

  private:
    std::uint64_t id_ = 0;
    isa::ArchState startState_;
    isa::ArchState endState_;
    std::uint64_t startInstIndex_ = 0;
    Tick startTick_ = 0;
    Tick closeTick_ = 0;
    unsigned instCount_ = 0;
    std::vector<LogEntry> entries_;
    std::vector<LineCopy> lines_;
    std::size_t bytesUsed_ = 0;
    int nextCheckerId_ = -1;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_LSLOG_HH
