/**
 * @file
 * System-level configuration: fault-tolerance mode and every Table I
 * parameter, grouped per subsystem.
 *
 * The four modes correspond to the systems compared in the paper's
 * evaluation:
 *
 *  - Baseline: an unmodified, fault-intolerant system (the
 *    normalization baseline of figures 10 and 13).
 *  - DetectionOnly: heterogeneous parallel error *detection* only
 *    (Ainsworth & Jones DSN'18) -- checkers and checkpoints but no
 *    rollback buffering (bar 1 of figure 10).
 *  - ParaMedic: full error correction with word-granularity rollback,
 *    fixed checkpoint targets and round-robin checker allocation
 *    (DSN'19; bar 2 of figure 10, baseline of figures 8/9).
 *  - ParaDox: this paper -- AIMD checkpoint lengths, line-granularity
 *    rollback, lowest-free-ID scheduling with power gating, and
 *    optional dynamic voltage/frequency adaptation.
 *
 * Individual ParaDox mechanisms can also be toggled independently for
 * the ablation benchmarks.
 */

#ifndef PARADOX_CORE_CONFIG_HH
#define PARADOX_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "cpu/checker_timing.hh"
#include "cpu/main_core.hh"
#include "isa/engine.hh"
#include "mem/hierarchy.hh"

namespace paradox
{
namespace core
{

/** Which fault-tolerance system to model. */
enum class Mode : std::uint8_t
{
    Baseline,
    DetectionOnly,
    ParaMedic,
    ParaDox,
};

/** Human-readable mode name. */
const char *modeName(Mode mode);

/** AIMD checkpoint-length controller parameters (section IV-A). */
struct CheckpointAimdParams
{
    unsigned initial = 1000;
    unsigned increment = 10;     //!< additive increase per clean ckpt
    unsigned maxLength = 5000;   //!< Table I: 5,000 inst. max
    unsigned minLength = 10;
};

/** Dynamic voltage adaptation parameters (section IV-B). */
struct VoltageAimdParams
{
    double vSafe = 0.980;        //!< known-safe margined voltage
    double vMinAllowed = 0.750;  //!< absolute controller floor
    /** Volts removed per clean checkpoint.  Sized so that, with the
     * 8x tide-mark slowdown, steady-state errors arrive roughly once
     * per millisecond (the paper's figure 11 cadence) rather than
     * dominating execution with recovery. */
    double decreaseStep = 0.0001;
    double recoveryFactor = 0.875; //!< gap multiplier on an error
    double tideSlowFactor = 8.0;  //!< step divisor below the tide mark
    unsigned tideResetErrors = 100; //!< errors between tide resets
    bool dynamicDecrease = true;  //!< false = constant decrease (fig 11)
    double regulatorSlewVoltsPerUs = 0.01;
    double startVoltage = 0.980;
};

/** Load-store-log geometry (Table I: 6 KiB per core). */
struct LogParams
{
    std::size_t segmentBytes = 6 * 1024;
    unsigned loadEntryBytes = 16;       //!< addr + value
    unsigned storeEntryBytes = 16;      //!< addr + new value
    unsigned storeOldValueBytes = 8;    //!< extra old value (ParaMedic)
    unsigned lineCopyBytes = 80;        //!< 64B line + addr + ECC
};

/** Recovery cost parameters (section IV-D / figure 9). */
struct RollbackParams
{
    unsigned cyclesPerWordUndo = 3;   //!< ParaMedic reverse walk
    unsigned cyclesPerLineRestore = 6; //!< ParaDox line restore
    unsigned finalCompareCycles = 16;  //!< register-file comparison
};

/**
 * Fault-escalation ladder (robustness layer above the paper's
 * transient-only recovery).  Each rung handles the failure class the
 * rung below cannot:
 *
 *  1. retryVerify -- a flagged segment is re-verified on a *second*
 *     checker before paying rollback.  Detection is symmetric: a
 *     clean second replay proves the log and checkpoints were fine
 *     and the first checker erred, so the segment retires without
 *     rollback.  Sound because any main-core corruption inside the
 *     segment makes every clean replay diverge from the recorded
 *     log/end state.
 *  2. quarantine -- checkers whose detections cluster (K strikes in
 *     a sliding window of their replays) are retired from the pool;
 *     the pool degrades gracefully down to one checker.  Handles
 *     intermittent/permanent per-core defects that would otherwise
 *     livelock lowest-free-ID scheduling.
 *  3. panic reset -- a run of consecutive rollbacks with no clean
 *     checkpoint in between means the operating point itself is
 *     unsustainable: snap the voltage island back to v_safe and hold
 *     it there for an (exponentially growing) backoff interval
 *     before the AIMD controller may undervolt again.
 *  4. forward-progress watchdog -- no segment *verified* in a whole
 *     watchdog interval escalates straight to rung 3, catching
 *     livelock shapes the rollback counter cannot see.
 */
struct EscalationParams
{
    /** Rung 1: re-verify flagged segments on a second checker. */
    bool retryVerify = false;

    /** @{ Rung 2: per-checker health tracking. */
    bool quarantineEnabled = false;
    unsigned strikesToQuarantine = 3;  //!< K strikes...
    unsigned strikeWindow = 8;         //!< ...within this many replays
    /** @} */

    /** @{ Rung 3: voltage panic reset. */
    /** Consecutive rollbacks (no clean checkpoint between) that
     * trigger a panic reset.  0 disables the rung. */
    unsigned panicRollbackThreshold = 0;
    double backoffUs = 5.0;      //!< initial hold at v_safe
    double backoffMaxUs = 320.0; //!< cap for the exponential growth
    /** @} */

    /** Rung 4: forward-progress watchdog interval in microseconds
     * (no verified segment for this long escalates).  0 disables. */
    double progressWatchdogUs = 0.0;
};

/** The complete system configuration. */
struct SystemConfig
{
    Mode mode = Mode::ParaDox;
    cpu::MainCoreParams mainCore{};
    double mainFreqHz = 3.2e9;
    cpu::CheckerParams checkers{};
    mem::HierarchyParams hierarchy{};
    LogParams log{};
    CheckpointAimdParams checkpointAimd{};
    VoltageAimdParams voltage{};
    RollbackParams rollback{};
    EscalationParams escalation{};
    unsigned regCheckpointCycles = 16;  //!< Table I
    /**
     * Checker-replay watchdog: detection fires once a replay exceeds
     * this many cycles per logged instruction (plus a fixed grace
     * allowance).  Sized so the densest legitimate segments sit far
     * below it while corrupted wrong-path execution trips it.
     * 0 disables the watchdog.
     */
    unsigned checkerTimeoutFactor = 24;
    std::uint64_t seed = 12345;

    /**
     * Execution engine for the main core's functional path (and the
     * checkers' fast replay path).  Decoded is the production
     * engine; Reference keeps the legacy per-step decoder available
     * for differential runs (`--engine reference`).
     */
    isa::EngineKind engine = isa::EngineKind::Decoded;

    /**
     * Uncacheable (memory-mapped I/O) window.  Stores into it update
     * external state and so "must be checked before they can
     * proceed" (section II-B): the system cuts the checkpoint at the
     * store and drains every outstanding check before committing it.
     * Zero size disables the window.
     */
    Addr mmioBase = 0;
    std::size_t mmioSize = 0;

    /**
     * Per-load probability of a (single-bit) soft error in
     * ECC-protected memory.  The paper assumes SECDED on memory and
     * caches (section IV-E); these events are corrected in place by
     * the real Hamming(72,64) codec and never reach the detection
     * machinery.  0 disables.
     */
    double memoryEccFaultRate = 0.0;

    /**
     * Per-load probability of a *double-bit* (detected-but-
     * uncorrectable, DUE) upset in ECC-protected memory.  SECDED
     * flags but cannot repair these; instead of being impossible by
     * construction they take a machine-check-style path: the open
     * segment rolls back to its checkpoint and memory is re-written
     * through the log, scrubbing the poisoned word.  Requires
     * rollback support; 0 disables.
     */
    double memoryEccDueRate = 0.0;

    /**
     * Physical-address offset applied on the *timing* path (caches,
     * DRAM, checker I-caches).  In a multicore, each core's program
     * occupies distinct physical pages; without this, co-scheduled
     * programs would falsely alias in the shared L2.  Functional
     * addresses are unaffected.
     */
    Addr physicalOffset = 0;

    /** @{ Feature toggles derived from mode (overridable). */
    bool adaptiveCheckpoints = true;   //!< AIMD lengths (ParaDox)
    bool lineGranularityRollback = true; //!< section IV-D (ParaDox)
    bool lowestIdScheduling = true;    //!< section IV-C (ParaDox)
    bool bufferUncheckedStores = true; //!< L1 pinning (correction modes)
    bool rollbackSupported = true;     //!< false for DetectionOnly
    bool dvfsEnabled = false;          //!< dynamic voltage adaptation
    /** @} */

    /** Apply the canonical toggle set for @p mode. */
    static SystemConfig forMode(Mode mode);

    /**
     * Enable the full escalation ladder with its default tuning
     * (retry-verify, quarantine, panic reset, progress watchdog).
     */
    void enableEscalation();

    /**
     * Sanity-check the configuration, calling fatal() with a
     * description of the first violated constraint.  The System
     * constructor runs this; tools building configs by hand should
     * too.
     */
    void validate() const;
};

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_CONFIG_HH
