#include "core/dvfs.hh"

namespace paradox
{
namespace core
{

VoltageController::VoltageController(const VoltageAimdParams &params)
    : params_(params), target_(params.startVoltage)
{
}

void
VoltageController::onCleanCheckpoint()
{
    double step = params_.decreaseStep;
    if (params_.dynamicDecrease && tideMark_ > 0.0 &&
        target_ <= tideMark_) {
        // Below the recorded highest-error voltage: proceed gingerly.
        step /= params_.tideSlowFactor;
    }
    target_ = std::max(target_ - step, params_.vMinAllowed);
}

void
VoltageController::onError(double v_at_error)
{
    ++totalErrors_;
    ++errorsSinceReset_;

    if (v_at_error > tideMark_)
        tideMark_ = v_at_error;
    if (v_at_error > highestErrorEver_)
        highestErrorEver_ = v_at_error;

    // Multiplicative recovery toward the known-safe voltage: shrink
    // the (safe - current) gap by the recovery factor.
    double gap = params_.vSafe - target_;
    if (gap > 0.0)
        target_ = params_.vSafe - gap * params_.recoveryFactor;

    if (errorsSinceReset_ >= params_.tideResetErrors) {
        // Become error-seeking again (phase may have changed).
        errorsSinceReset_ = 0;
        tideMark_ = 0.0;
    }
}

void
VoltageController::panicReset()
{
    ++panicResets_;
    // Record where sustained trouble started: the tide mark keeps
    // the controller cautious as it descends back toward this point.
    if (target_ > tideMark_)
        tideMark_ = target_;
    if (target_ > highestErrorEver_)
        highestErrorEver_ = target_;
    target_ = params_.vSafe;
}

Regulator::Regulator(double initial_volts, double slew_volts_per_us)
    : current_(initial_volts), target_(initial_volts),
      slewPerTick_(slew_volts_per_us / double(ticksPerUs))
{
}

void
Regulator::setTarget(double volts, Tick now)
{
    // Settle the supply up to now before changing course.
    voltageAt(now);
    target_ = volts;
}

double
Regulator::voltageAt(Tick now)
{
    if (now > lastUpdate_) {
        const double budget =
            slewPerTick_ * double(now - lastUpdate_);
        if (current_ < target_)
            current_ = std::min(current_ + budget, target_);
        else if (current_ > target_)
            current_ = std::max(current_ - budget, target_);
        lastUpdate_ = now;
    }
    return current_;
}

double
compensatedFrequency(double f_nominal, double v_current,
                     double v_target, double v_threshold)
{
    if (v_current >= v_target)
        return f_nominal;
    const double denom = v_target - v_threshold;
    if (denom <= 0.0)
        return f_nominal;
    const double ratio = (v_current - v_threshold) / denom;
    return f_nominal * std::max(ratio, 0.05);
}

} // namespace core
} // namespace paradox
