/**
 * @file
 * The single home of the load-store-log byte arithmetic.
 *
 * Three consumers must agree byte-for-byte on how much log space a
 * memory access can take: the exact peeked capacity cut in
 * System::stepInstruction (bytesNeeded), the superblock admission
 * gate in System::stepSuperblock, and the static effect summaries
 * (analysis/effects.hh) whose per-run bounds the gate consumes.  The
 * worst-case math lives in analysis::storeLogBound / uopLogBound
 * (the analysis library cannot see core headers); this header maps a
 * SystemConfig onto those analysis::EffectParams and adds the exact
 * (line-copy-aware) store cost the peek path needs, so core code
 * never re-derives an entry size by hand.
 */

#ifndef PARADOX_CORE_LOGBYTES_HH
#define PARADOX_CORE_LOGBYTES_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "analysis/effects.hh"
#include "core/config.hh"

namespace paradox
{
namespace core
{

/**
 * The log byte geometry of @p cfg as analysis-side EffectParams
 * (@p lineBytes comes from the memory hierarchy, not the config).
 */
inline analysis::EffectParams
logEffectParams(const SystemConfig &cfg, unsigned lineBytes)
{
    analysis::EffectParams p;
    p.loadEntryBytes = cfg.log.loadEntryBytes;
    p.storeEntryBytes = cfg.log.storeEntryBytes;
    p.storeOldValueBytes = cfg.log.storeOldValueBytes;
    p.lineCopyBytes = cfg.log.lineCopyBytes;
    p.lineBytes = lineBytes;
    p.lineGranularityRollback = cfg.lineGranularityRollback;
    p.rollbackSupported = cfg.rollbackSupported;
    return p;
}

/**
 * Exact log bytes a store of @p size bytes at @p addr appends right
 * now: the entry plus, under line-granularity rollback, one line
 * copy per touched line for which @p isCopied(line) is still false.
 */
template <typename IsCopied>
std::size_t
storeLogBytes(const analysis::EffectParams &p, std::uint64_t addr,
              unsigned size, IsCopied &&isCopied)
{
    std::size_t bytes = p.storeEntryBytes;
    if (p.lineGranularityRollback) {
        const std::uint64_t lb = p.lineBytes;
        const std::uint64_t first = addr & ~(lb - 1);
        const std::uint64_t last = (addr + size - 1) & ~(lb - 1);
        for (std::uint64_t line = first; line <= last; line += lb)
            if (!isCopied(line))
                bytes += p.lineCopyBytes;
    } else if (p.rollbackSupported) {
        bytes += p.storeOldValueBytes;
    }
    return bytes;
}

/**
 * Worst-case log bytes of any single memory micro-op up to
 * @p maxSize access bytes -- the bound the pre-effect-summary
 * superblock gate used for every op.
 */
inline std::size_t
worstUopLogBytes(const analysis::EffectParams &p, unsigned maxSize = 8)
{
    return std::max<std::size_t>(p.loadEntryBytes,
                                 analysis::storeLogBound(maxSize, p));
}

} // namespace core
} // namespace paradox

#endif // PARADOX_CORE_LOGBYTES_HH
