/**
 * @file
 * The main core's cache hierarchy: L1I + L1D, a shared L2 with a
 * stride prefetcher, and DDR3 DRAM (Table I).
 *
 * The hierarchy also owns the ParaMedic-specific interactions between
 * caching and checking: unchecked dirty lines are pinned in the L1D
 * and released as segments verify, and a data access that cannot
 * allocate (all ways pinned) reports BlockedPinned so the core can
 * stall until a check completes (paper sections II-B, IV-A).
 */

#ifndef PARADOX_MEM_HIERARCHY_HH
#define PARADOX_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/prefetcher.hh"
#include "sim/clock.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/** Full-hierarchy configuration. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 2, 64, 1, 6, false};
    CacheParams l1d{"l1d", 32 * 1024, 4, 64, 2, 6, true};
    CacheParams l2{"l2", 1024 * 1024, 16, 64, 12, 16, false};
    DramParams dram{};
    StridePrefetcher::Params prefetch{};
    bool prefetchEnabled = true;
};

/** Result of one data-side access. */
struct DataAccessResult
{
    Tick completeAt = 0;       //!< when the value is available
    bool blockedPinned = false; //!< set entirely pinned; retry later
    bool l1Hit = false;
    bool l2Hit = false;
    /**
     * True when this is the first write to the line under the current
     * checkpoint timestamp, i.e. ParaDox must copy the old line into
     * the rollback side of the log (section IV-D).
     */
    bool needsLineCopy = false;
};

/** L1I/L1D/L2/DRAM composition for the main core. */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyParams &params,
                   const ClockDomain &clock);

    /**
     * Multicore form: private L1s over an externally owned L2 and
     * DRAM, shared with other cores' hierarchies (contention flows
     * through the shared tags and bank timings).  The shared parts
     * must outlive this hierarchy.
     */
    CacheHierarchy(const HierarchyParams &params,
                   const ClockDomain &clock, Cache *shared_l2,
                   Dram *shared_dram);

    /** Fetch-side access; returns the completion tick. */
    Tick instFetch(Addr pc, Tick now);

    /**
     * Data-side access at @p now.
     * @param pc the accessing instruction (feeds the L2 prefetcher)
     * @param pin_seg segment to pin a written line under (noPin for
     *        fault-intolerant/detection-only runs)
     * @param stamp current checkpoint id for line-copy decisions
     */
    DataAccessResult dataAccess(Addr addr, Addr pc, bool is_write,
                                Tick now, std::uint64_t pin_seg = noPin,
                                std::uint64_t stamp = 0);

    /** A segment verified: release its pinned lines. */
    void segmentVerified(std::uint64_t seg) { l1d_.unpinUpTo(seg); }

    /** Segments >= @p seg rolled back: release their pins. */
    void rollbackFrom(std::uint64_t seg) { l1d_.unpinFrom(seg); }

    /** Clear all cache state (between independent runs). */
    void reset();

    /** @{ Component access for statistics and tests. */
    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return *l2_; }
    Dram &dram() { return *dram_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }
    /** @} */

    unsigned lineBytes() const { return l1d_.params().lineBytes; }

    /**
     * Register every level's counters under @p reg as the groups
     * mem.l1i, mem.l1d, mem.l2, mem.dram, mem.pf.  For hierarchies
     * sharing an L2/DRAM the shared components report whole-chip
     * totals, so only one hierarchy per chip should register them.
     */
    void registerStats(stats::Registry &reg) const;

  private:
    Tick cycles(unsigned n) const { return clock_.cyclesToTicks(n); }

    /** L2 lookup shared by both sides; returns completion tick. */
    Tick l2Access(Addr addr, Addr pc, bool is_write, Tick start,
                  bool *l2_hit, bool demand);

    const ClockDomain &clock_;
    Cache l1i_;
    Cache l1d_;
    std::unique_ptr<Cache> ownedL2_;
    std::unique_ptr<Dram> ownedDram_;
    Cache *l2_;
    Dram *dram_;
    StridePrefetcher prefetcher_;
    bool prefetchEnabled_;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_HIERARCHY_HH
