/**
 * @file
 * PC-indexed stride prefetcher (the L2 "stride prefetcher" of
 * Table I).
 */

#ifndef PARADOX_MEM_PREFETCHER_HH
#define PARADOX_MEM_PREFETCHER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/**
 * Classic reference-prediction-table stride prefetcher: one entry per
 * load/store PC, a confirmed stride issues a prefetch @p degree lines
 * ahead.
 */
class StridePrefetcher
{
  public:
    struct Params
    {
        unsigned tableEntries = 64;
        unsigned degree = 2;          //!< lines of lookahead
        unsigned confidenceMax = 3;
        unsigned confidenceThreshold = 2;
        unsigned lineBytes = 64;
    };

    StridePrefetcher() : StridePrefetcher(Params{}) {}
    explicit StridePrefetcher(const Params &params);

    /**
     * Observe a demand access by @p pc to @p addr.
     * @return the address to prefetch, if the stride is confirmed.
     */
    std::optional<Addr> observe(Addr pc, Addr addr);

    std::uint64_t issued() const { return issued_; }

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("issued", "prefetches issued",
                            [this] { return double(issued_); });
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr lastAddr = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    Params params_;
    std::vector<Entry> table_;
    std::uint64_t issued_ = 0;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_PREFETCHER_HH
