/**
 * @file
 * Set-associative write-back timing cache.
 *
 * Data correctness lives in SimpleMemory; caches model tags and
 * latency only.  Two ParaMedic/ParaDox-specific features live here:
 *
 *  - line *pinning*: L1 data-cache lines dirtied by a not-yet-checked
 *    segment may not be evicted until that segment verifies (paper
 *    section II-B / IV-A).  A miss whose set is entirely pinned
 *    reports BlockedPinned instead of evicting.
 *
 *  - per-line *timestamps*: each line records the id of the last
 *    checkpoint that copied its old contents into the load-store log,
 *    which is how ParaDox takes at most one rollback copy per line
 *    per checkpoint (section IV-D).
 */

#ifndef PARADOX_MEM_CACHE_HH
#define PARADOX_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/** Static geometry and timing of one cache. */
struct CacheParams
{
    std::string name = "cache";
    std::size_t sizeBytes = 32 * 1024;
    unsigned assoc = 4;
    unsigned lineBytes = 64;
    unsigned hitCycles = 2;      //!< hit latency, in owning-clock cycles
    unsigned mshrs = 6;          //!< outstanding-miss limit
    bool allowPinning = false;   //!< L1D unchecked-line buffering
};

/** Sentinel for "not pinned". */
constexpr std::uint64_t noPin = ~std::uint64_t(0);

/** How an access resolved. */
enum class CacheOutcome : std::uint8_t
{
    Hit,
    Miss,
    BlockedPinned,  //!< miss, but every way in the set is pinned
};

/** Everything the hierarchy needs to know about one access. */
struct CacheAccessResult
{
    CacheOutcome outcome = CacheOutcome::Miss;
    bool writebackDirty = false;  //!< a dirty victim was evicted
    Addr writebackAddr = 0;       //!< line address of that victim
    bool lineStampMatched = false; //!< line timestamp == access stamp
};

/** A set-associative, LRU, write-back, write-allocate timing cache. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access @p addr at time @p now.
     *
     * On a miss, a victim way is allocated (possibly reporting a
     * dirty writeback); on BlockedPinned nothing changes.  When
     * @p pin_seg != noPin and this is a write, the line is pinned by
     * that segment (pins take the max: a line stays pinned until its
     * youngest writer verifies).  @p stamp sets/compares the per-line
     * checkpoint timestamp used by line-granularity rollback.
     */
    CacheAccessResult access(Addr addr, bool is_write, Tick now,
                             std::uint64_t pin_seg = noPin,
                             std::uint64_t stamp = 0);

    /** Install a line without demand semantics (prefetch fill). */
    void fill(Addr addr, Tick now);

    /** True if the line containing @p addr is present. */
    bool contains(Addr addr) const;

    /** Unpin every line pinned by a segment <= @p seg. */
    void unpinUpTo(std::uint64_t seg);

    /** Unpin every line pinned by a segment >= @p seg (rollback). */
    void unpinFrom(std::uint64_t seg);

    /** Drop all content (used between independent runs). */
    void invalidateAll();

    /**
     * Delay @p start until an MSHR is free, then occupy one until
     * @p completion.  Models the outstanding-miss limit.
     */
    Tick reserveMshr(Tick start, Tick completion);

    /** Hit latency in owning-clock cycles. */
    unsigned hitCycles() const { return params_.hitCycles; }

    const CacheParams &params() const { return params_; }

    /** @{ Statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }
    std::uint64_t pinnedBlocks() const { return pinnedBlocks_; }
    std::uint64_t pinnedLineCount() const;
    /** @} */

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("hits", "cache hits",
                            [this] { return double(hits_); });
        g.add<stats::Gauge>("misses", "cache misses",
                            [this] { return double(misses_); });
        g.add<stats::Gauge>("evictions", "lines evicted",
                            [this] { return double(evictions_); });
        g.add<stats::Gauge>("pinned_lines", "currently pinned lines",
                            [this] { return double(pinnedLineCount()); });
        g.add<stats::Gauge>("pinned_blocks", "misses blocked on pins",
                            [this] { return double(pinnedBlocks_); });
    }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        Tick lastUsed = 0;
        std::uint64_t pinSeg = noPin;
        std::uint64_t stamp = ~std::uint64_t(0);
    };

    std::uint64_t tagOf(Addr addr) const;
    std::size_t setOf(Addr addr) const;
    Addr lineAddr(std::uint64_t tag, std::size_t set) const;

    CacheParams params_;
    std::size_t numSets_;
    /** Geometry is power-of-two (checked in the ctor): index math is
     *  shift/mask, not the runtime divides the compiler would have to
     *  emit for the configurable params_ values. */
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0;
    std::uint64_t setMask_ = 0;
    std::vector<Line> lines_;   //!< numSets_ * assoc, set-major
    /**
     * Last line resolved by access(): consecutive accesses to one
     * line (instruction fetch, stack traffic) skip the way scan.  The
     * memo is self-validating -- the line id fixes the set, and the
     * cached way's valid+tag check is exactly the scan's hit
     * condition -- so hit/miss counts, LRU order, and pin state are
     * bit-identical with or without it.  lines_ never reallocates
     * after construction.
     */
    std::uint64_t mruLineId_ = ~std::uint64_t(0);
    Line *mruLine_ = nullptr;
    std::vector<Tick> mshrBusy_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
    std::uint64_t pinnedBlocks_ = 0;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_CACHE_HH
