/**
 * @file
 * Address translation: a flat page mapping with a TLB timing model.
 *
 * The load-store log's two sides are addressed differently in the
 * paper (section IV-D): detection entries carry *virtual* addresses,
 * "to avoid translation on checker-core execution, with the original
 * translation on the main core implemented redundantly", while
 * rollback cache-line copies carry *physical* addresses "to allow
 * rollback without translation".  Modelling translation makes that
 * distinction real: the main core pays TLB-miss walks, checkers
 * replay purely in virtual space, and rollback writes physical lines
 * straight back.
 *
 * The mapping itself is a single linear offset per address space
 * (virtual -> physical = va + base), which is all a single-program
 * core needs while still exercising the full translate/miss/walk
 * path; the multicore uses it to give each program distinct physical
 * pages.
 */

#ifndef PARADOX_MEM_TLB_HH
#define PARADOX_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/** TLB geometry and timing. */
struct TlbParams
{
    unsigned entries = 64;        //!< fully pinned-latency, set-assoc
    unsigned assoc = 4;
    unsigned pageBytes = 4096;
    unsigned walkCycles = 30;     //!< page-table walk on a miss
};

/** Result of one translation. */
struct Translation
{
    Addr paddr = 0;
    bool tlbHit = true;
    unsigned extraCycles = 0;     //!< walk cost when tlbHit is false
};

/**
 * A set-associative TLB over a linear virtual->physical mapping.
 */
class Tlb
{
  public:
    Tlb(const TlbParams &params, Addr physical_base);

    /** Translate @p vaddr, updating TLB state and statistics. */
    Translation translate(Addr vaddr);

    /** Translation without timing side effects (rollback path). */
    Addr physical(Addr vaddr) const { return vaddr + base_; }

    /** Flush all entries (context switch / power gating). */
    void flush();

    /** @{ Statistics. */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    /** @} */

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("hits", "TLB hits",
                            [this] { return double(hits_); });
        g.add<stats::Gauge>("misses", "TLB misses (page walks)",
                            [this] { return double(misses_); });
    }

    const TlbParams &params() const { return params_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t vpn = 0;
        std::uint64_t lastUsed = 0;
    };

    TlbParams params_;
    Addr base_;
    std::size_t sets_;
    std::vector<Entry> entries_;
    /**
     * Most-recently-hit entry: consecutive accesses to one page are
     * the overwhelmingly common case, and the memoized entry's vpn
     * check subsumes the set scan exactly (same hit/miss counts,
     * same LRU ordering).  entries_ never reallocates after
     * construction; flush() invalidates via the valid flag.
     */
    Entry *mru_ = nullptr;
    unsigned pageShift_ = 0;    //!< log2(pageBytes), checked in ctor
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_TLB_HH
