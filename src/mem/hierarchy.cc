#include "mem/hierarchy.hh"

namespace paradox
{
namespace mem
{

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               const ClockDomain &clock)
    : clock_(clock), l1i_(params.l1i), l1d_(params.l1d),
      ownedL2_(std::make_unique<Cache>(params.l2)),
      ownedDram_(std::make_unique<Dram>(params.dram)),
      l2_(ownedL2_.get()), dram_(ownedDram_.get()),
      prefetcher_(params.prefetch),
      prefetchEnabled_(params.prefetchEnabled)
{
}

CacheHierarchy::CacheHierarchy(const HierarchyParams &params,
                               const ClockDomain &clock,
                               Cache *shared_l2, Dram *shared_dram)
    : clock_(clock), l1i_(params.l1i), l1d_(params.l1d),
      l2_(shared_l2), dram_(shared_dram),
      prefetcher_(params.prefetch),
      prefetchEnabled_(params.prefetchEnabled)
{
}

void
CacheHierarchy::registerStats(stats::Registry &reg) const
{
    l1i_.registerStats(reg.group("mem.l1i"));
    l1d_.registerStats(reg.group("mem.l1d"));
    l2_->registerStats(reg.group("mem.l2"));
    dram_->registerStats(reg.group("mem.dram"));
    prefetcher_.registerStats(reg.group("mem.pf"));
}

Tick
CacheHierarchy::l2Access(Addr addr, Addr pc, bool is_write, Tick start,
                         bool *l2_hit, bool demand)
{
    CacheAccessResult l2r = l2_->access(addr, is_write, start);
    Tick complete = start + cycles(l2_->hitCycles());
    if (l2_hit)
        *l2_hit = l2r.outcome == CacheOutcome::Hit;

    if (l2r.writebackDirty)
        dram_->access(l2r.writebackAddr, true, start);

    if (l2r.outcome != CacheOutcome::Hit) {
        Tick begin = l2_->reserveMshr(complete,
                                      complete + dram_->rowHitLatency());
        complete = dram_->access(addr, is_write, begin);
    }

    // The prefetcher trains on demand L2 lookups and fills the L2 in
    // the background (no latency charged to the demand access).
    if (demand && prefetchEnabled_) {
        if (auto pref = prefetcher_.observe(pc, addr)) {
            if (!l2_->contains(*pref)) {
                dram_->access(*pref, false, complete);
                l2_->fill(*pref, complete);
            }
        }
    }
    return complete;
}

Tick
CacheHierarchy::instFetch(Addr pc, Tick now)
{
    CacheAccessResult r = l1i_.access(pc, false, now);
    Tick complete = now + cycles(l1i_.hitCycles());
    if (r.outcome == CacheOutcome::Hit)
        return complete;

    bool l2_hit = false;
    Tick fill = l2Access(pc, pc, false, complete, &l2_hit, true);
    Tick begin = l1i_.reserveMshr(now, fill);
    return fill + (begin - now);
}

DataAccessResult
CacheHierarchy::dataAccess(Addr addr, Addr pc, bool is_write, Tick now,
                           std::uint64_t pin_seg, std::uint64_t stamp)
{
    DataAccessResult result;

    CacheAccessResult l1r = l1d_.access(addr, is_write, now, pin_seg,
                                        stamp);
    if (l1r.outcome == CacheOutcome::BlockedPinned) {
        result.blockedPinned = true;
        result.completeAt = now;
        return result;
    }

    result.needsLineCopy = is_write && !l1r.lineStampMatched;
    result.completeAt = now + cycles(l1d_.hitCycles());
    result.l1Hit = l1r.outcome == CacheOutcome::Hit;

    if (l1r.writebackDirty)
        l2_->access(l1r.writebackAddr, true, now);

    if (!result.l1Hit) {
        Tick fill = l2Access(addr, pc, false, result.completeAt,
                             &result.l2Hit, true);
        Tick begin = l1d_.reserveMshr(now, fill);
        result.completeAt = fill + (begin - now);
    }
    return result;
}

void
CacheHierarchy::reset()
{
    l1i_.invalidateAll();
    l1d_.invalidateAll();
    l2_->invalidateAll();
}

} // namespace mem
} // namespace paradox
