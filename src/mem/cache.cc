#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (params_.lineBytes == 0 ||
        (params_.lineBytes & (params_.lineBytes - 1)) != 0)
        fatal("Cache: line size must be a power of two");
    if (params_.assoc == 0)
        fatal("Cache: associativity must be positive");
    numSets_ = params_.sizeBytes / (params_.lineBytes * params_.assoc);
    if (numSets_ == 0 || (numSets_ & (numSets_ - 1)) != 0)
        fatal("Cache: set count must be a positive power of two");
    lines_.resize(numSets_ * params_.assoc);
    mshrBusy_.assign(std::max(1u, params_.mshrs), 0);
    while ((1u << lineShift_) < params_.lineBytes)
        ++lineShift_;
    while ((std::size_t(1) << setShift_) < numSets_)
        ++setShift_;
    setMask_ = numSets_ - 1;
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr >> lineShift_) >> setShift_;
}

std::size_t
Cache::setOf(Addr addr) const
{
    return (addr >> lineShift_) & setMask_;
}

Addr
Cache::lineAddr(std::uint64_t tag, std::size_t set) const
{
    return ((tag << setShift_) + set) << lineShift_;
}

CacheAccessResult
Cache::access(Addr addr, bool is_write, Tick now, std::uint64_t pin_seg,
              std::uint64_t stamp)
{
    CacheAccessResult result;
    const std::uint64_t lineId = addr >> lineShift_;
    const std::uint64_t tag = lineId >> setShift_;
    const std::size_t set = lineId & setMask_;

    Line *line = nullptr;
    if (lineId == mruLineId_ && mruLine_ && mruLine_->valid &&
        mruLine_->tag == tag) {
        line = mruLine_;
    } else {
        Line *base = &lines_[set * params_.assoc];
        for (unsigned w = 0; w < params_.assoc; ++w) {
            if (base[w].valid && base[w].tag == tag) {
                line = &base[w];
                break;
            }
        }
    }

    if (line) {
        ++hits_;
        result.outcome = CacheOutcome::Hit;
    } else {
        Line *base = &lines_[set * params_.assoc];
        // Victim selection: invalid way first, then LRU among the
        // unpinned ways. A fully pinned set cannot evict.
        Line *victim = nullptr;
        for (unsigned w = 0; w < params_.assoc; ++w) {
            if (!base[w].valid) {
                victim = &base[w];
                break;
            }
        }
        if (!victim) {
            for (unsigned w = 0; w < params_.assoc; ++w) {
                Line &cand = base[w];
                if (params_.allowPinning && cand.pinSeg != noPin)
                    continue;
                if (!victim || cand.lastUsed < victim->lastUsed)
                    victim = &cand;
            }
        }
        if (!victim) {
            ++pinnedBlocks_;
            result.outcome = CacheOutcome::BlockedPinned;
            return result;
        }
        if (victim->valid) {
            ++evictions_;
            if (victim->dirty) {
                result.writebackDirty = true;
                result.writebackAddr = lineAddr(victim->tag, set);
            }
        }
        ++misses_;
        result.outcome = CacheOutcome::Miss;
        *victim = Line{};
        victim->valid = true;
        victim->tag = tag;
        line = victim;
    }

    mruLineId_ = lineId;
    mruLine_ = line;
    line->lastUsed = now;
    result.lineStampMatched = line->stamp == stamp;
    if (is_write) {
        line->dirty = true;
        line->stamp = stamp;
        if (params_.allowPinning && pin_seg != noPin) {
            if (line->pinSeg == noPin || pin_seg > line->pinSeg)
                line->pinSeg = pin_seg;
        }
    }
    return result;
}

void
Cache::fill(Addr addr, Tick now)
{
    const std::uint64_t tag = tagOf(addr);
    const std::size_t set = setOf(addr);
    Line *base = &lines_[set * params_.assoc];

    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return;  // already present
    }
    Line *victim = nullptr;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
    }
    if (!victim) {
        for (unsigned w = 0; w < params_.assoc; ++w) {
            Line &cand = base[w];
            if (params_.allowPinning && cand.pinSeg != noPin)
                continue;
            if (!victim || cand.lastUsed < victim->lastUsed)
                victim = &cand;
        }
    }
    if (!victim)
        return;  // never displace pinned lines for a prefetch
    if (victim->valid)
        ++evictions_;
    *victim = Line{};
    victim->valid = true;
    victim->tag = tag;
    // Prefetched lines are inserted cold-ish (slightly aged) so a
    // wrong prefetch is the next victim.
    victim->lastUsed = now == 0 ? 0 : now - 1;
}

bool
Cache::contains(Addr addr) const
{
    const std::uint64_t tag = tagOf(addr);
    const std::size_t set = setOf(addr);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Cache::unpinUpTo(std::uint64_t seg)
{
    for (auto &line : lines_) {
        if (line.pinSeg != noPin && line.pinSeg <= seg)
            line.pinSeg = noPin;
    }
}

void
Cache::unpinFrom(std::uint64_t seg)
{
    for (auto &line : lines_) {
        if (line.pinSeg != noPin && line.pinSeg >= seg)
            line.pinSeg = noPin;
    }
}

void
Cache::invalidateAll()
{
    for (auto &line : lines_)
        line = Line{};
    std::fill(mshrBusy_.begin(), mshrBusy_.end(), 0);
}

Tick
Cache::reserveMshr(Tick start, Tick completion)
{
    auto slot = std::min_element(mshrBusy_.begin(), mshrBusy_.end());
    Tick begin = std::max(start, *slot);
    *slot = begin + (completion - start);
    return begin;
}

std::uint64_t
Cache::pinnedLineCount() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        n += line.valid && line.pinSeg != noPin;
    return n;
}

} // namespace mem
} // namespace paradox
