#include "mem/dram.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

Dram::Dram(const DramParams &params) : params_(params)
{
    if (params_.banks == 0 || params_.banks > banks_.size())
        fatal("Dram: unsupported bank count");
    period_ = static_cast<Tick>(
        static_cast<double>(ticksPerSecond) / params_.clockHz + 0.5);
}

Tick
Dram::rowHitLatency() const
{
    return cycles(params_.tCL + params_.burstCycles);
}

Tick
Dram::rowConflictLatency() const
{
    return cycles(params_.tRP + params_.tRCD + params_.tCL +
                  params_.burstCycles);
}

Tick
Dram::access(Addr addr, bool is_write, Tick now)
{
    const std::uint64_t row_index = addr / params_.rowBytes;
    // XOR-fold higher address bits into the bank index, as real
    // controllers do, so power-of-two-strided streams (e.g. arrays
    // allocated a row-multiple apart) spread across banks instead of
    // serializing on one.
    const std::uint64_t folded =
        row_index ^ (row_index / params_.banks) ^
        (row_index / (params_.banks * params_.banks));
    const unsigned bank_index = folded % params_.banks;
    const std::uint64_t row = row_index / params_.banks;
    Bank &bank = banks_[bank_index];

    Tick start = now > bank.readyAt ? now : bank.readyAt;
    Tick latency;

    if (bank.open && bank.row == row) {
        ++rowHits_;
        latency = cycles(params_.tCL + params_.burstCycles);
    } else if (!bank.open) {
        ++rowMisses_;
        latency = cycles(params_.tRCD + params_.tCL +
                         params_.burstCycles);
    } else {
        ++rowConflicts_;
        latency = cycles(params_.tRP + params_.tRCD + params_.tCL +
                         params_.burstCycles);
    }

    bank.open = true;
    bank.row = row;
    // The bank is occupied for the access itself; writes also hold it
    // for the write-recovery-ish burst but the caller does not wait.
    bank.readyAt = start + latency + (is_write ? cycles(2) : 0);

    return start + latency;
}

} // namespace mem
} // namespace paradox
