#include "mem/tlb.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

Tlb::Tlb(const TlbParams &params, Addr physical_base)
    : params_(params), base_(physical_base)
{
    if (params_.assoc == 0 || params_.entries % params_.assoc != 0)
        fatal("Tlb: entries must be a multiple of associativity");
    sets_ = params_.entries / params_.assoc;
    if (sets_ == 0 || (sets_ & (sets_ - 1)) != 0)
        fatal("Tlb: set count must be a power of two");
    if (params_.pageBytes == 0 ||
        (params_.pageBytes & (params_.pageBytes - 1)) != 0)
        fatal("Tlb: page size must be a power of two");
    while ((1u << pageShift_) < params_.pageBytes)
        ++pageShift_;
    entries_.resize(params_.entries);
}

Translation
Tlb::translate(Addr vaddr)
{
    ++clock_;
    Translation result;
    result.paddr = vaddr + base_;

    const std::uint64_t vpn = vaddr >> pageShift_;
    if (mru_ && mru_->valid && mru_->vpn == vpn) {
        mru_->lastUsed = clock_;
        ++hits_;
        return result;
    }
    Entry *set = &entries_[(vpn & (sets_ - 1)) * params_.assoc];

    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (set[w].valid && set[w].vpn == vpn) {
            set[w].lastUsed = clock_;
            ++hits_;
            mru_ = &set[w];
            return result;
        }
    }

    // Miss: walk, then install over the LRU way.
    ++misses_;
    result.tlbHit = false;
    result.extraCycles = params_.walkCycles;
    Entry *victim = &set[0];
    for (unsigned w = 1; w < params_.assoc; ++w) {
        if (!set[w].valid) {
            victim = &set[w];
            break;
        }
        if (set[w].lastUsed < victim->lastUsed)
            victim = &set[w];
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lastUsed = clock_;
    mru_ = victim;
    return result;
}

void
Tlb::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace mem
} // namespace paradox
