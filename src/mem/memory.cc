#include "mem/memory.hh"

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

SimpleMemory::Page *
SimpleMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

SimpleMemory::Page &
SimpleMemory::touchPage(Addr addr)
{
    auto &slot = pages_[addr / pageBytes];
    if (!slot)
        slot = std::make_unique<Page>();
    return *slot;
}

std::uint64_t
SimpleMemory::read(Addr addr, unsigned size)
{
    if (size == 0 || size > 8)
        panic("SimpleMemory::read: bad size");
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return v;
}

std::uint64_t
SimpleMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    if (size == 0 || size > 8)
        panic("SimpleMemory::write: bad size");
    std::uint64_t old = 0;
    for (unsigned i = 0; i < size; ++i) {
        old |= std::uint64_t(readByte(addr + i)) << (8 * i);
        writeByte(addr + i, std::uint8_t(value >> (8 * i)));
    }
    return old;
}

std::uint8_t
SimpleMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SimpleMemory::writeByte(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr % pageBytes] = value;
}

void
SimpleMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t n) const
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = readByte(addr + i);
}

void
SimpleMemory::writeBlock(Addr addr, const std::uint8_t *in, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        writeByte(addr + i, in[i]);
}

std::uint64_t
SimpleMemory::fingerprint() const
{
    std::uint64_t acc = 0;
    for (const auto &[pageNum, page] : pages_) {
        std::uint64_t h = 0xcbf29ce484222325ULL ^ pageNum;
        bool nonZero = false;
        for (std::uint8_t byte : *page) {
            nonZero |= byte != 0;
            h = (h ^ byte) * 0x100000001b3ULL;
        }
        // All-zero pages contribute nothing: content equality must
        // not depend on which pages happen to be materialized.
        if (nonZero)
            acc += h;
    }
    return acc;
}

} // namespace mem
} // namespace paradox
