#include "mem/memory.hh"

#include <algorithm>
#include <cstring>

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

SimpleMemory::Page *
SimpleMemory::findPage(Addr addr) const
{
    const Addr num = addr / pageBytes;
    if (num == lastPageNum_)
        return lastPage_;
    auto it = pages_.find(num);
    lastPageNum_ = num;
    lastPage_ = it == pages_.end() ? nullptr : it->second.get();
    return lastPage_;
}

SimpleMemory::Page &
SimpleMemory::touchPage(Addr addr)
{
    const Addr num = addr / pageBytes;
    auto &slot = pages_[num];
    if (!slot)
        slot = std::make_unique<Page>();
    lastPageNum_ = num;
    lastPage_ = slot.get();
    return *slot;
}

std::uint64_t
SimpleMemory::read(Addr addr, unsigned size)
{
    if (size == 0 || size > 8)
        panic("SimpleMemory::read: bad size");
    const std::size_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        const Page *page = findPage(addr);
        if (!page)
            return 0;
        std::uint64_t v = 0;
        for (unsigned i = 0; i < size; ++i)
            v |= std::uint64_t((*page)[off + i]) << (8 * i);
        return v;
    }
    std::uint64_t v = 0;
    for (unsigned i = 0; i < size; ++i)
        v |= std::uint64_t(readByte(addr + i)) << (8 * i);
    return v;
}

std::uint64_t
SimpleMemory::write(Addr addr, unsigned size, std::uint64_t value)
{
    if (size == 0 || size > 8)
        panic("SimpleMemory::write: bad size");
    const std::size_t off = addr % pageBytes;
    if (off + size <= pageBytes) {
        Page &page = touchPage(addr);
        std::uint64_t old = 0;
        for (unsigned i = 0; i < size; ++i) {
            old |= std::uint64_t(page[off + i]) << (8 * i);
            page[off + i] = std::uint8_t(value >> (8 * i));
        }
        return old;
    }
    std::uint64_t old = 0;
    for (unsigned i = 0; i < size; ++i) {
        old |= std::uint64_t(readByte(addr + i)) << (8 * i);
        writeByte(addr + i, std::uint8_t(value >> (8 * i)));
    }
    return old;
}

std::uint8_t
SimpleMemory::readByte(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SimpleMemory::writeByte(Addr addr, std::uint8_t value)
{
    touchPage(addr)[addr % pageBytes] = value;
}

void
SimpleMemory::readBlock(Addr addr, std::uint8_t *out, std::size_t n) const
{
    while (n != 0) {
        const std::size_t off = addr % pageBytes;
        const std::size_t chunk = std::min(n, pageBytes - off);
        const Page *page = findPage(addr);
        if (page)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
SimpleMemory::writeBlock(Addr addr, const std::uint8_t *in, std::size_t n)
{
    while (n != 0) {
        const std::size_t off = addr % pageBytes;
        const std::size_t chunk = std::min(n, pageBytes - off);
        std::memcpy(touchPage(addr).data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        n -= chunk;
    }
}

std::uint64_t
SimpleMemory::fingerprint() const
{
    std::uint64_t acc = 0;
    for (const auto &[pageNum, page] : pages_) {
        std::uint64_t h = 0xcbf29ce484222325ULL ^ pageNum;
        std::uint64_t nonZero = 0;
        const std::uint8_t *data = page->data();
        // FNV over 64-bit words; fingerprints are only ever compared
        // between runs of the same binary, never persisted.
        for (std::size_t i = 0; i < pageBytes; i += 8) {
            std::uint64_t word;
            std::memcpy(&word, data + i, 8);
            nonZero |= word;
            h = (h ^ word) * 0x100000001b3ULL;
        }
        // All-zero pages contribute nothing: content equality must
        // not depend on which pages happen to be materialized.
        if (nonZero)
            acc += h;
    }
    return acc;
}

} // namespace mem
} // namespace paradox
