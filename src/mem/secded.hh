/**
 * @file
 * Hamming(72,64) SECDED codec.
 *
 * ParaDox assumes SECDED ECC protects memory and caches (paper
 * section IV-E), and the line-granularity rollback path copies cache
 * lines *with their ECC* into the load-store log rather than
 * recalculating it (section IV-D).  This is a real single-error-
 * correcting, double-error-detecting extended Hamming code over
 * 64-bit words: 7 Hamming parity bits plus one overall parity bit.
 */

#ifndef PARADOX_MEM_SECDED_HH
#define PARADOX_MEM_SECDED_HH

#include <cstdint>

namespace paradox
{
namespace mem
{

/** Outcome of decoding a possibly corrupted codeword. */
enum class EccStatus : std::uint8_t
{
    Ok,             //!< no error present
    Corrected,      //!< single-bit error found and repaired
    Uncorrectable,  //!< double-bit error detected (data unreliable)
};

/** A 72-bit SECDED codeword: 64 data bits + 8 check bits. */
struct EccWord
{
    std::uint64_t data;
    std::uint8_t check;

    bool operator==(const EccWord &) const = default;
};

/** Result of a decode attempt. */
struct EccDecode
{
    std::uint64_t data;   //!< corrected data (garbage if Uncorrectable)
    EccStatus status;
    unsigned flippedBit;  //!< codeword bit repaired when Corrected
};

/** Hamming(72,64) encoder/decoder. */
class Secded
{
  public:
    /** Encode @p data into a codeword. */
    static EccWord encode(std::uint64_t data);

    /** Decode @p word, correcting a single flipped bit if present. */
    static EccDecode decode(const EccWord &word);

    /**
     * Flip codeword bit @p bit (0..71) in place.  Bits 0..63 are data
     * bits, 64..71 are check bits.  Fault-injection helper.
     */
    static void flipBit(EccWord &word, unsigned bit);

    /** Total codeword bits. */
    static constexpr unsigned codeBits = 72;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_SECDED_HH
