/**
 * @file
 * DDR3-1600 11-11-11-28 timing model (Table I).
 *
 * A deliberately compact open-page model: 8 banks, one open row per
 * bank, tCL/tRCD/tRP/tRAS timing in 800 MHz DRAM-clock cycles, and
 * per-bank occupancy so back-to-back conflicts serialize.  This gives
 * the three-way latency split (row hit / closed bank / row conflict)
 * that makes the memory-bound workloads in the evaluation behave
 * differently from the compute-bound ones.
 */

#ifndef PARADOX_MEM_DRAM_HH
#define PARADOX_MEM_DRAM_HH

#include <array>
#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/** DDR3 device timing parameters, in DRAM clock cycles. */
struct DramParams
{
    double clockHz = 800e6;  //!< DDR3-1600: 800 MHz bus clock
    unsigned tCL = 11;       //!< CAS latency
    unsigned tRCD = 11;      //!< RAS-to-CAS delay
    unsigned tRP = 11;       //!< row precharge
    unsigned tRAS = 28;      //!< row active time
    unsigned burstCycles = 4; //!< BL8 data transfer
    unsigned banks = 8;
    unsigned rowBytes = 8192; //!< row-buffer (page) size
};

/** Open-page DDR3 bank/row timing model. */
class Dram
{
  public:
    explicit Dram(const DramParams &params = DramParams{});

    /**
     * Account one access beginning no earlier than @p now.
     * @param addr physical address
     * @param is_write write accesses occupy the bank but the caller
     *        usually does not wait on them (write-backs)
     * @param now earliest start tick
     * @return tick at which the data is available
     */
    Tick access(Addr addr, bool is_write, Tick now);

    /** Row-hit latency in ticks (useful for calibration and tests). */
    Tick rowHitLatency() const;

    /** Row-conflict latency in ticks. */
    Tick rowConflictLatency() const;

    const DramParams &params() const { return params_; }

    /** @{ Access statistics. */
    std::uint64_t rowHits() const { return rowHits_; }
    std::uint64_t rowConflicts() const { return rowConflicts_; }
    std::uint64_t rowMisses() const { return rowMisses_; }
    /** @} */

    /** Publish the raw counters as Gauges in @p g. */
    void
    registerStats(stats::StatGroup &g) const
    {
        g.add<stats::Gauge>("row_hits", "open-row hits",
                            [this] { return double(rowHits_); });
        g.add<stats::Gauge>("row_conflicts", "row-buffer conflicts",
                            [this] { return double(rowConflicts_); });
        g.add<stats::Gauge>("row_misses", "closed-bank accesses",
                            [this] { return double(rowMisses_); });
    }

  private:
    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
        Tick readyAt = 0;  //!< earliest next activity
    };

    Tick cycles(unsigned n) const { return n * period_; }

    DramParams params_;
    Tick period_;
    std::array<Bank, 16> banks_;
    std::uint64_t rowHits_ = 0;
    std::uint64_t rowConflicts_ = 0;
    std::uint64_t rowMisses_ = 0;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_DRAM_HH
