#include "mem/prefetcher.hh"

namespace paradox
{
namespace mem
{

StridePrefetcher::StridePrefetcher(const Params &params) : params_(params)
{
    table_.resize(params_.tableEntries);
}

std::optional<Addr>
StridePrefetcher::observe(Addr pc, Addr addr)
{
    Entry &entry = table_[(pc / 4) % table_.size()];

    if (!entry.valid || entry.pc != pc) {
        entry = Entry{};
        entry.valid = true;
        entry.pc = pc;
        entry.lastAddr = addr;
        return std::nullopt;
    }

    // Subtract in the unsigned domain: wild (fault-injected) addresses
    // may differ by more than int64 range, and unsigned wraparound is
    // the two's-complement stride we want.
    const std::int64_t stride = std::int64_t(addr - entry.lastAddr);
    entry.lastAddr = addr;

    if (stride == 0)
        return std::nullopt;

    if (stride == entry.stride) {
        if (entry.confidence < params_.confidenceMax)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = entry.confidence > 0 ? entry.confidence - 1 : 0;
        return std::nullopt;
    }

    if (entry.confidence < params_.confidenceThreshold)
        return std::nullopt;

    ++issued_;
    return addr + Addr(stride) * Addr(params_.degree);
}

} // namespace mem
} // namespace paradox
