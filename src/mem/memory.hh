/**
 * @file
 * Sparse functional backing memory.
 *
 * Timing lives in the cache hierarchy and DRAM models; this class is
 * the authoritative byte store that the main core executes against
 * and that rollback restores.  Pages materialize zero-filled on first
 * touch, so workloads can use scattered address spaces cheaply.
 */

#ifndef PARADOX_MEM_MEMORY_HH
#define PARADOX_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/mem_if.hh"
#include "sim/types.hh"

namespace paradox
{
namespace mem
{

/** Sparse, page-granular byte-addressable memory. */
class SimpleMemory : public isa::MemIf
{
  public:
    static constexpr std::size_t pageBytes = 4096;

    std::uint64_t read(Addr addr, unsigned size) override;
    std::uint64_t write(Addr addr, unsigned size,
                        std::uint64_t value) override;

    /** Read one byte (materializing nothing on absent pages). */
    std::uint8_t readByte(Addr addr) const;

    /** Write one byte. */
    void writeByte(Addr addr, std::uint8_t value);

    /** Copy @p n bytes starting at @p addr into @p out. */
    void readBlock(Addr addr, std::uint8_t *out, std::size_t n) const;

    /** Write @p n bytes starting at @p addr from @p in. */
    void writeBlock(Addr addr, const std::uint8_t *in, std::size_t n);

    /**
     * Order-independent fingerprint of all touched pages.  Pages that
     * were materialized but remain all-zero hash identically to
     * untouched pages, so two memories with the same logical content
     * always compare equal.
     */
    std::uint64_t fingerprint() const;

    /** Number of materialized pages (for capacity diagnostics). */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    /**
     * Memo of the last page looked up.  Accesses are strongly
     * page-local (the commit loop hammers the stack and a few data
     * pages), so this turns the per-access hash lookup into a single
     * compare.  Page storage is node-stable (unique_ptr in a node
     * map) and pages are never deallocated, so a cached pointer can
     * only go stale one way: a page materializing after a null was
     * memoized -- touchPage refreshes the memo to cover that.
     */
    mutable Addr lastPageNum_ = ~Addr(0);
    mutable Page *lastPage_ = nullptr;
};

} // namespace mem
} // namespace paradox

#endif // PARADOX_MEM_MEMORY_HH
