#include "mem/secded.hh"

#include <array>

#include "sim/logging.hh"

namespace paradox
{
namespace mem
{

namespace
{

// Hamming positions run 1..71; the seven powers of two hold parity,
// the remaining 64 positions hold data (in increasing order).  Bit 71
// of the codeword is the overall parity of everything else.
constexpr unsigned hammingPositions = 71;

constexpr bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

struct Layout
{
    // dataPos[i]: Hamming position of data bit i.
    std::array<unsigned, 64> dataPos{};
    // parityPos[j]: Hamming position of parity bit j (2^j).
    std::array<unsigned, 7> parityPos{};
    // posKind[p]: data index + 1, or 0 for parity positions.
    std::array<unsigned, hammingPositions + 1> posToData{};

    constexpr Layout()
    {
        unsigned d = 0, p = 0;
        for (unsigned pos = 1; pos <= hammingPositions; ++pos) {
            if (isPowerOfTwo(pos)) {
                parityPos[p++] = pos;
                posToData[pos] = 0;
            } else {
                dataPos[d] = pos;
                posToData[pos] = d + 1;
                ++d;
            }
        }
    }
};

constexpr Layout layout{};

/** Expand an EccWord into codeword bits indexed by Hamming position. */
std::array<bool, hammingPositions + 1>
expand(const EccWord &w)
{
    std::array<bool, hammingPositions + 1> bits{};
    for (unsigned i = 0; i < 64; ++i)
        bits[layout.dataPos[i]] = (w.data >> i) & 1;
    for (unsigned j = 0; j < 7; ++j)
        bits[layout.parityPos[j]] = (w.check >> j) & 1;
    return bits;
}

} // namespace

EccWord
Secded::encode(std::uint64_t data)
{
    EccWord w{data, 0};
    // Parity bit j covers all positions with bit j set in their index.
    for (unsigned j = 0; j < 7; ++j) {
        bool parity = false;
        for (unsigned i = 0; i < 64; ++i) {
            if (layout.dataPos[i] & (1u << j))
                parity ^= (data >> i) & 1;
        }
        w.check |= std::uint8_t(parity) << j;
    }
    // Overall parity over all 71 Hamming bits.
    bool overall = false;
    auto bits = expand(w);
    for (unsigned pos = 1; pos <= hammingPositions; ++pos)
        overall ^= bits[pos];
    w.check |= std::uint8_t(overall) << 7;
    return w;
}

EccDecode
Secded::decode(const EccWord &word)
{
    auto bits = expand(word);

    unsigned syndrome = 0;
    bool overall = (word.check >> 7) & 1;
    for (unsigned pos = 1; pos <= hammingPositions; ++pos) {
        if (bits[pos]) {
            syndrome ^= pos;
            overall ^= true;
        }
    }
    // 'overall' is now the parity of all 72 bits: 0 for even weight.

    EccDecode result{word.data, EccStatus::Ok, 0};

    if (syndrome == 0 && !overall)
        return result;  // clean

    if (syndrome == 0 && overall) {
        // The overall parity bit itself flipped; data is intact.
        result.status = EccStatus::Corrected;
        result.flippedBit = 71;
        return result;
    }

    if (!overall || syndrome > hammingPositions) {
        // Even total weight error with a non-zero syndrome, or a
        // syndrome pointing outside the codeword: >= 2 bit flips.
        result.status = EccStatus::Uncorrectable;
        return result;
    }

    // Single-bit error at Hamming position 'syndrome'.
    result.status = EccStatus::Corrected;
    unsigned data_idx = layout.posToData[syndrome];
    if (data_idx != 0) {
        result.data = word.data ^ (std::uint64_t(1) << (data_idx - 1));
        result.flippedBit = data_idx - 1;
    } else {
        // A parity bit flipped; data is intact.
        for (unsigned j = 0; j < 7; ++j) {
            if (layout.parityPos[j] == syndrome)
                result.flippedBit = 64 + j;
        }
    }
    return result;
}

void
Secded::flipBit(EccWord &word, unsigned bit)
{
    if (bit < 64)
        word.data ^= std::uint64_t(1) << bit;
    else if (bit < codeBits)
        word.check ^= std::uint8_t(1) << (bit - 64);
    else
        panic("Secded::flipBit: bit out of range");
}

} // namespace mem
} // namespace paradox
