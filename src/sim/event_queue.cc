#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace paradox
{

EventQueue::EventId
EventQueue::schedule(Tick when, Callback fn)
{
    if (when < now_)
        panic("EventQueue: scheduling into the past");
    EventId id = nextId_++;
    heap_.push(Entry{when, id, std::move(fn)});
    return id;
}

EventQueue::EventId
EventQueue::scheduleIn(Tick delta, Callback fn)
{
    return schedule(now_ + delta, std::move(fn));
}

bool
EventQueue::cancel(EventId id)
{
    if (id == 0 || id >= nextId_)
        return false;
    if (std::find(dead_.begin(), dead_.end(), id) != dead_.end())
        return false;
    dead_.push_back(id);
    ++cancelled_;
    return true;
}

bool
EventQueue::fireNext()
{
    while (!heap_.empty()) {
        Entry e = heap_.top();
        heap_.pop();
        auto it = std::find(dead_.begin(), dead_.end(), e.id);
        if (it != dead_.end()) {
            dead_.erase(it);
            --cancelled_;
            continue;
        }
        now_ = e.when;
        e.fn();
        return true;
    }
    return false;
}

void
EventQueue::runUntil(Tick until)
{
    while (!heap_.empty() && heap_.top().when <= until) {
        if (!fireNext())
            break;
    }
    if (now_ < until)
        now_ = until;
}

std::uint64_t
EventQueue::runAll(std::uint64_t max_events)
{
    std::uint64_t fired = 0;
    while (fired < max_events && fireNext())
        ++fired;
    return fired;
}

void
EventQueue::advanceTo(Tick t)
{
    if (t > now_)
        now_ = t;
}

} // namespace paradox
