#include "sim/rng.hh"

#include <cmath>
#include <limits>

namespace paradox
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
    // A state of all zeros is the one forbidden xoshiro state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::geometric(double p)
{
    if (p <= 0.0)
        return std::numeric_limits<std::uint64_t>::max();
    if (p >= 1.0)
        return 1;
    // Inverse-CDF method: ceil(ln(U) / ln(1-p)), clamped to >= 1.
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    double gap = std::ceil(std::log(u) / std::log1p(-p));
    if (gap < 1.0)
        gap = 1.0;
    if (gap >= 1.8e19)
        return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(gap);
}

double
Rng::exponential(double lambda)
{
    double u = nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -std::log(u) / lambda;
}

double
Rng::gaussian()
{
    double u1 = nextDouble();
    if (u1 <= 0.0)
        u1 = 0x1.0p-53;
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
}

} // namespace paradox
