/**
 * @file
 * A minimal discrete-event kernel.
 *
 * The ParaDox system model is mostly instruction-driven, but several
 * components (the voltage regulator, power-gating bookkeeping, and
 * directed tests) want classical scheduled callbacks.  EventQueue
 * provides deterministic execution: events at equal ticks fire in
 * insertion order.
 */

#ifndef PARADOX_SIM_EVENT_QUEUE_HH
#define PARADOX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace paradox
{

/** Deterministic discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events waiting to fire. */
    std::size_t pending() const { return heap_.size() - cancelled_; }

    /** True when no live events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Schedule @p fn at absolute time @p when (>= now).
     * @return an id usable with cancel().
     */
    EventId schedule(Tick when, Callback fn);

    /** Schedule @p fn @p delta ticks from now. */
    EventId scheduleIn(Tick delta, Callback fn);

    /** Cancel a scheduled event; returns false if already fired. */
    bool cancel(EventId id);

    /** Run all events with tick <= @p until, advancing now(). */
    void runUntil(Tick until);

    /** Run until the queue drains (or @p max_events fire). */
    std::uint64_t runAll(std::uint64_t max_events = ~std::uint64_t(0));

    /** Advance now() without running events (instruction-driven use). */
    void advanceTo(Tick t);

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            // Equal ticks resolve by insertion order (smaller id first).
            return a.when != b.when ? a.when > b.when : a.id > b.id;
        }
    };

    bool fireNext();

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::vector<EventId> dead_;
    std::size_t cancelled_ = 0;
    Tick now_ = 0;
    EventId nextId_ = 1;
};

} // namespace paradox

#endif // PARADOX_SIM_EVENT_QUEUE_HH
