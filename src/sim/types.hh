/**
 * @file
 * Fundamental simulation types: ticks, cycles and conversions.
 *
 * A Tick is one femtosecond. Using femtoseconds keeps the periods of
 * every clock used in the ParaDox evaluation (3.2 GHz main cores,
 * 1 GHz checker cores, 800 MHz DRAM) exactly representable as
 * integers, so cycle <-> tick conversions never accumulate rounding
 * error over a run.
 */

#ifndef PARADOX_SIM_TYPES_HH
#define PARADOX_SIM_TYPES_HH

#include <cstdint>

namespace paradox
{

/** Simulated time, in femtoseconds. */
using Tick = std::uint64_t;

/** A count of clock cycles in some clock domain. */
using Cycles = std::uint64_t;

/** Ticks per second: 1e15 femtoseconds. */
constexpr Tick ticksPerSecond = 1'000'000'000'000'000ULL;

/** Ticks per nanosecond. */
constexpr Tick ticksPerNs = 1'000'000ULL;

/** Ticks per microsecond. */
constexpr Tick ticksPerUs = 1'000'000'000ULL;

/** Ticks per millisecond. */
constexpr Tick ticksPerMs = 1'000'000'000'000ULL;

/** A tick value that compares later than any reachable time. */
constexpr Tick maxTick = ~Tick(0);

/** Convert a tick count to (double) nanoseconds, for reporting. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerNs);
}

/** Convert a tick count to (double) seconds, for reporting. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(ticksPerSecond);
}

/** Memory address within the simulated physical address space. */
using Addr = std::uint64_t;

} // namespace paradox

#endif // PARADOX_SIM_TYPES_HH
