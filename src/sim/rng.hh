/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * All stochastic behaviour in the simulator (fault inter-arrival
 * times, fault sites, boot-time checker rotation) draws from Rng so
 * that a run is exactly reproducible from its seed.  The core
 * generator is xoshiro256**, which is small, fast, and has no
 * observable bias for the distributions used here.
 */

#ifndef PARADOX_SIM_RNG_HH
#define PARADOX_SIM_RNG_HH

#include <cstdint>

namespace paradox
{

/** Seedable xoshiro256** generator with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed, returning the generator to a known stream. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound). @p bound must be non-zero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability @p p. */
    bool chance(double p);

    /**
     * Geometric gap: number of trials until (and including) the first
     * success, for per-trial probability @p p.  Used for fault
     * inter-arrival sampling; returns a huge gap for p <= 0.
     */
    std::uint64_t geometric(double p);

    /** Exponential variate with rate @p lambda (mean 1/lambda). */
    double exponential(double lambda);

    /** Standard-normal variate (Box-Muller; two uniforms per call). */
    double gaussian();

  private:
    std::uint64_t s_[4];
};

} // namespace paradox

#endif // PARADOX_SIM_RNG_HH
