#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace paradox
{
namespace stats
{

namespace
{

/** Render a double as a JSON-legal number (no inf/nan literals). */
void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    os << v;
}

} // namespace

void
Counter::print(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << description() << "\n";
}

void
Counter::printJson(std::ostream &os) const
{
    os << value_;
}

void
Scalar::print(std::ostream &os) const
{
    os << name() << " " << value_ << " # " << description() << "\n";
}

void
Scalar::printJson(std::ostream &os) const
{
    jsonNumber(os, value_);
}

void
Gauge::print(std::ostream &os) const
{
    os << name() << " " << value() << " # " << description() << "\n";
}

void
Gauge::printJson(std::ostream &os) const
{
    jsonNumber(os, value());
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }
    ++count_;
    sum_ += v;
    sumSq_ += v * v;
}

double
Distribution::stddev() const
{
    if (count_ < 2)
        return 0.0;
    double n = static_cast<double>(count_);
    double var = (sumSq_ - sum_ * sum_ / n) / (n - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

void
Distribution::print(std::ostream &os) const
{
    os << name() << " count=" << count_ << " mean=" << mean()
       << " min=" << min() << " max=" << max()
       << " stddev=" << stddev() << " # " << description() << "\n";
}

void
Distribution::printJson(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"mean\":";
    jsonNumber(os, mean());
    os << ",\"min\":";
    jsonNumber(os, min());
    os << ",\"max\":";
    jsonNumber(os, max());
    os << ",\"stddev\":";
    jsonNumber(os, stddev());
    os << "}";
}

void
Distribution::reset()
{
    count_ = 0;
    sum_ = sumSq_ = min_ = max_ = 0.0;
}

Histogram::Histogram(std::string name, std::string desc, double min,
                     double max, std::size_t buckets)
    : Stat(std::move(name), std::move(desc)), min_(min), max_(max),
      width_((max - min) / double(buckets))
{
    buckets_.assign(buckets, 0);
}

void
Histogram::sample(double v)
{
    ++count_;
    if (v < min_) {
        ++underflow_;
    } else if (v >= max_) {
        ++overflow_;
    } else {
        ++buckets_[std::size_t((v - min_) / width_)];
    }
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return min_;
    const double target = p * double(count_);
    double seen = double(underflow_);
    if (seen >= target)
        return min_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += double(buckets_[i]);
        if (seen >= target)
            return bucketLow(i) + width_;
    }
    return max_;
}

void
Histogram::print(std::ostream &os) const
{
    os << name() << " count=" << count_ << " under=" << underflow_
       << " over=" << overflow_;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i])
            os << " [" << bucketLow(i) << ")=" << buckets_[i];
    }
    os << " # " << description() << "\n";
}

void
Histogram::printJson(std::ostream &os) const
{
    os << "{\"count\":" << count_ << ",\"p50\":";
    jsonNumber(os, p50());
    os << ",\"p95\":";
    jsonNumber(os, p95());
    os << ",\"p99\":";
    jsonNumber(os, p99());
    os << "}";
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = underflow_ = overflow_ = 0;
}

void
TimeSeries::sample(Tick when, double value)
{
    ++seen_;
    if ((seen_ - 1) % keepInterval_ != 0)
        return;
    data_.emplace_back(when, value);
    if (capacity_ && data_.size() > capacity_) {
        // Thin in place: keep every other retained sample, and halve
        // the future acceptance rate accordingly.
        std::vector<std::pair<Tick, double>> kept;
        kept.reserve(data_.size() / 2 + 1);
        for (std::size_t i = 0; i < data_.size(); i += 2)
            kept.push_back(data_[i]);
        data_.swap(kept);
        keepInterval_ *= 2;
    }
}

void
TimeSeries::print(std::ostream &os) const
{
    os << name() << " samples=" << data_.size() << " # "
       << description() << "\n";
}

void
TimeSeries::reset()
{
    data_.clear();
    keepInterval_ = 1;
    seen_ = 0;
}

void
TimeSeries::printJson(std::ostream &os) const
{
    os << "{\"samples\":" << data_.size() << "}";
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &stat : stats_)
        stat->print(os);
}

void
StatGroup::resetAll()
{
    for (const auto &stat : stats_)
        stat->reset();
}

Stat *
StatGroup::find(const std::string &full_name)
{
    for (const auto &stat : stats_)
        if (stat->name() == full_name)
            return stat.get();
    return nullptr;
}

StatGroup &
Registry::group(const std::string &prefix)
{
    for (const auto &g : groups_)
        if (g->prefix() == prefix)
            return *g;
    groups_.emplace_back(std::make_unique<StatGroup>(prefix));
    return *groups_.back();
}

Stat *
Registry::find(const std::string &full_name)
{
    for (const auto &g : groups_)
        if (Stat *s = g->find(full_name))
            return s;
    return nullptr;
}

const Stat *
Registry::find(const std::string &full_name) const
{
    return const_cast<Registry *>(this)->find(full_name);
}

void
Registry::forEach(const std::function<void(const Stat &)> &fn) const
{
    for (const auto &g : groups_)
        for (const auto &stat : g->stats())
            fn(*stat);
}

void
Registry::dump(std::ostream &os) const
{
    for (const auto &g : groups_)
        g->dump(os);
}

void
Registry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    forEach([&](const Stat &s) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << s.name() << "\":";
        s.printJson(os);
    });
    os << "}";
}

void
Registry::resetAll()
{
    for (const auto &g : groups_)
        g->resetAll();
}

} // namespace stats
} // namespace paradox
