/**
 * @file
 * Statistics package.
 *
 * Modelled loosely on gem5's stats: every model component owns named
 * statistics registered in a StatGroup, and the harness dumps them at
 * the end of a run.  The kinds cover everything the ParaDox
 * evaluation needs: Counter (monotonic event counts), Scalar
 * (settable values), Gauge (a live value read through a callback, so
 * components keep their raw hot-path counters and still publish
 * them), Distribution (running mean/min/max/stddev used for e.g.
 * rollback and wasted-execution times in figure 9), and TimeSeries
 * (tick-stamped samples used for the voltage trace in figure 11).
 *
 * A Registry owns StatGroups under hierarchical dotted prefixes
 * ("mem.l1d", "faults") and is the one enumerable place consumers
 * pull from: text dump, flat JSON dump, and generic periodic
 * sampling -- a stat marked with a series name (setSeries) is picked
 * up by obs::MetricsSampler::probeRegistry without any hand-wired
 * probe list.
 */

#ifndef PARADOX_SIM_STATS_HH
#define PARADOX_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace paradox
{
namespace stats
{

/** Common naming for all statistic kinds. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}
    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }

    /** Render one dump line (or several) to @p os. */
    virtual void print(std::ostream &os) const = 0;

    /** Render this stat's value as one JSON value (no name). */
    virtual void printJson(std::ostream &os) const = 0;

    /** Clear back to the just-constructed state. */
    virtual void reset() = 0;

    /** @{
     * Generic numeric sampling.  A stat that can be read as one
     * number reports sampleable(); marking it with a series name
     * opts it into periodic time-series export (the sampler uses
     * the series as the counter-track name, so legacy track names
     * stay stable across the registry migration).  The series
     * string is owned here, so probes may keep a pointer to it for
     * the stat's lifetime.
     */
    virtual bool sampleable() const { return false; }
    virtual double sampleValue() const { return 0.0; }
    const std::string &series() const { return series_; }
    void setSeries(std::string series) { series_ = std::move(series); }
    /** @} */

  private:
    std::string name_;
    std::string desc_;
    std::string series_;
};

/** Monotonically increasing event count. */
class Counter : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0; }

    bool sampleable() const override { return true; }
    double sampleValue() const override { return double(value_); }

  private:
    std::uint64_t value_ = 0;
};

/** A settable scalar value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator=(double v) { value_ = v; return *this; }
    double value() const { return value_; }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override { value_ = 0.0; }

    bool sampleable() const override { return true; }
    double sampleValue() const override { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A live value read through a callback.  Components keep their raw
 * hot-path counters (plain uint64_t members, zero registration cost
 * per event) and publish them by registering a Gauge over the
 * accessor; the registry reads the current value on dump or sample.
 */
class Gauge : public Stat
{
  public:
    Gauge(std::string name, std::string desc,
          std::function<double()> read)
        : Stat(std::move(name), std::move(desc)), read_(std::move(read))
    {}

    double value() const { return read_(); }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    /** The underlying component owns the state; nothing to clear. */
    void reset() override {}

    bool sampleable() const override { return true; }
    double sampleValue() const override { return read_(); }

  private:
    std::function<double()> read_;
};

/** Running distribution: count, mean, min, max, sample stddev. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double total() const { return sum_; }
    /** Sample standard deviation (0 for fewer than two samples). */
    double stddev() const;

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over [min, max) with underflow/overflow
 * bins; the evaluation uses it for checkpoint-length and
 * recovery-time distributions.
 */
class Histogram : public Stat
{
  public:
    Histogram(std::string name, std::string desc, double min,
              double max, std::size_t buckets);

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return count_; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    const std::vector<std::uint64_t> &buckets() const
    {
        return buckets_;
    }
    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const
    {
        return min_ + double(i) * width_;
    }
    /** Smallest value v such that >= p of samples are <= v. */
    double percentile(double p) const;
    /** @{ Conventional latency percentiles (stats JSON output). */
    double p50() const { return percentile(0.50); }
    double p95() const { return percentile(0.95); }
    double p99() const { return percentile(0.99); }
    /** @} */

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    double min_;
    double max_;
    double width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Tick-stamped sample trace with optional decimation.
 *
 * If a capacity is given, samples beyond it are thinned by doubling
 * the keep-interval, so long runs keep a bounded, uniformly spaced
 * trace (sufficient for plotting figure 11).
 */
class TimeSeries : public Stat
{
  public:
    TimeSeries(std::string name, std::string desc,
               std::size_t capacity = 0)
        : Stat(std::move(name), std::move(desc)), capacity_(capacity)
    {}

    /** Record @p value at time @p when. */
    void sample(Tick when, double value);

    const std::vector<std::pair<Tick, double>> &samples() const
    {
        return data_;
    }

    void print(std::ostream &os) const override;
    void printJson(std::ostream &os) const override;
    void reset() override;

  private:
    std::vector<std::pair<Tick, double>> data_;
    std::size_t capacity_;
    std::uint64_t keepInterval_ = 1;
    std::uint64_t seen_ = 0;
};

/** A registry of statistics owned by one model component. */
class StatGroup
{
  public:
    explicit StatGroup(std::string prefix = "") : prefix_(std::move(prefix))
    {}

    /** Create and register a statistic of kind @p S. */
    template <typename S, typename... Args>
    S &
    add(const std::string &name, const std::string &desc, Args &&...args)
    {
        auto stat = new S(prefix_.empty() ? name : prefix_ + "." + name,
                          desc, std::forward<Args>(args)...);
        stats_.emplace_back(stat);
        return *stat;
    }

    /** Dump every registered statistic to @p os. */
    void dump(std::ostream &os) const;

    /** Reset every registered statistic. */
    void resetAll();

    const std::string &prefix() const { return prefix_; }

    /** Registered stats, in registration order. */
    const std::vector<std::unique_ptr<Stat>> &stats() const
    {
        return stats_;
    }

    /** Find a stat by its full (prefixed) name; null if absent. */
    Stat *find(const std::string &full_name);

  private:
    std::string prefix_;
    std::vector<std::unique_ptr<Stat>> stats_;
};

/**
 * A hierarchy of StatGroups under dotted prefixes, owned in creation
 * order (which is also dump and sampling order, so output stays
 * stable as components register).
 */
class Registry
{
  public:
    /** Get the group registered under @p prefix, creating it. */
    StatGroup &group(const std::string &prefix);

    /** Groups in creation order. */
    const std::vector<std::unique_ptr<StatGroup>> &groups() const
    {
        return groups_;
    }

    /** @{ Find a stat by full dotted name; null if absent. */
    Stat *find(const std::string &full_name);
    const Stat *find(const std::string &full_name) const;
    /** @} */

    /** Visit every stat, group by group, in registration order. */
    void forEach(const std::function<void(const Stat &)> &fn) const;

    /** Text dump (the classic `name value # desc` lines). */
    void dump(std::ostream &os) const;

    /** One flat JSON object keyed by full stat names. */
    void dumpJson(std::ostream &os) const;

    /** Reset every stat in every group. */
    void resetAll();

  private:
    std::vector<std::unique_ptr<StatGroup>> groups_;
};

} // namespace stats
} // namespace paradox

#endif // PARADOX_SIM_STATS_HH
