/**
 * @file
 * Clock and voltage domains.
 *
 * ParaDox assigns each main core its own voltage island whose supply
 * can be moved below the nominal margin, while each group of checker
 * cores shares a separate, margined island (paper section IV-B).  A
 * ClockDomain converts between cycles and ticks at its current
 * frequency; frequency may change at run time (DVFS), so conversions
 * are only valid incrementally -- callers advance time cycle-by-cycle
 * or in bounded bursts between frequency changes.
 */

#ifndef PARADOX_SIM_CLOCK_HH
#define PARADOX_SIM_CLOCK_HH

#include "sim/types.hh"

namespace paradox
{

/** A supply-voltage island. */
class VoltageDomain
{
  public:
    /** @param nominal Nominal (margined) supply voltage in volts. */
    explicit VoltageDomain(double nominal = 1.0)
        : nominal_(nominal), current_(nominal)
    {}

    /** Nominal, margined voltage in volts. */
    double nominal() const { return nominal_; }

    /** Present supply voltage in volts. */
    double voltage() const { return current_; }

    /** Set the present supply voltage in volts. */
    void setVoltage(double v) { current_ = v; }

  private:
    double nominal_;
    double current_;
};

/**
 * A clock whose frequency may be retuned at run time.
 *
 * Internally the domain stores the period in ticks (femtoseconds), so
 * all frequencies of interest are exactly representable.
 */
class ClockDomain
{
  public:
    /** @param freq_hz Initial clock frequency in hertz. */
    explicit ClockDomain(double freq_hz = 1e9) { setFrequency(freq_hz); }

    /** Present frequency in hertz. */
    double frequency() const { return frequency_; }

    /** Present clock period in ticks. */
    Tick period() const { return period_; }

    /** Retune the clock to @p freq_hz hertz. */
    void
    setFrequency(double freq_hz)
    {
        frequency_ = freq_hz;
        period_ = static_cast<Tick>(
            static_cast<double>(ticksPerSecond) / freq_hz + 0.5);
        if (period_ == 0)
            period_ = 1;
    }

    /** Duration of @p n cycles at the present frequency. */
    Tick cyclesToTicks(Cycles n) const { return n * period_; }

    /**
     * Number of whole cycles covered by @p t ticks at the present
     * frequency (rounding up: a partial cycle still occupies a slot).
     */
    Cycles
    ticksToCycles(Tick t) const
    {
        return (t + period_ - 1) / period_;
    }

  private:
    double frequency_;
    Tick period_;
};

} // namespace paradox

#endif // PARADOX_SIM_CLOCK_HH
