/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal()
 * for user-caused conditions the simulation cannot continue from, and
 * warn()/inform()/verbose() for non-fatal notices.
 *
 * Every message goes through one mutex-serialized sink that writes a
 * fully assembled line with a single fwrite, so concurrent workers
 * (exp::Runner --jobs N) never interleave partial lines on stderr.
 * warn()/inform()/verbose() are gated on a global verbosity level:
 *
 *   0 (--quiet)    only panic/fatal
 *   1 (default)    + warn and inform
 *   2 (-v)         + verbose
 */

#ifndef PARADOX_SIM_LOGGING_HH
#define PARADOX_SIM_LOGGING_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace paradox
{

namespace detail
{

inline std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

inline std::atomic<int> &
logLevelVar()
{
    static std::atomic<int> level{1};
    return level;
}

} // namespace detail

/** Current verbosity (0 quiet, 1 default, 2 verbose). */
inline int
logLevel()
{
    return detail::logLevelVar().load(std::memory_order_relaxed);
}

/** Set the global verbosity level. */
inline void
setLogLevel(int level)
{
    detail::logLevelVar().store(level, std::memory_order_relaxed);
}

/** Write @p text to stderr as-is under the log mutex (progress UIs). */
inline void
logRaw(const std::string &text)
{
    std::lock_guard<std::mutex> lock(detail::logMutex());
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
}

/** One serialized "prefix: msg\n" line on stderr. */
inline void
logLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += ": ";
    line += msg;
    line += '\n';
    logRaw(line);
}

/**
 * Report an internal invariant violation and abort. Use only for
 * conditions that indicate a bug in the simulator itself.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    logLine("panic", msg);
    std::abort();
}

/**
 * Report an unrecoverable, user-caused error (bad configuration,
 * invalid arguments) and exit with a failure code.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    logLine("fatal", msg);
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
inline void
warn(const std::string &msg)
{
    if (logLevel() >= 1)
        logLine("warn", msg);
}

/** Report an informational status message. */
inline void
inform(const std::string &msg)
{
    if (logLevel() >= 1)
        logLine("info", msg);
}

/** Report a debugging detail (shown only under -v). */
inline void
verbose(const std::string &msg)
{
    if (logLevel() >= 2)
        logLine("debug", msg);
}

/** Abort with a message if @p cond does not hold. */
inline void
simAssert(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace paradox

#endif // PARADOX_SIM_LOGGING_HH
