/**
 * @file
 * Status and error reporting helpers, following the gem5 convention:
 * panic() for internal invariant violations (simulator bugs), fatal()
 * for user-caused conditions the simulation cannot continue from, and
 * warn()/inform() for non-fatal notices.
 */

#ifndef PARADOX_SIM_LOGGING_HH
#define PARADOX_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace paradox
{

/**
 * Report an internal invariant violation and abort. Use only for
 * conditions that indicate a bug in the simulator itself.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/**
 * Report an unrecoverable, user-caused error (bad configuration,
 * invalid arguments) and exit with a failure code.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

/** Report a suspicious but survivable condition. */
inline void
warn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

/** Report an informational status message. */
inline void
inform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

/** Abort with a message if @p cond does not hold. */
inline void
simAssert(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace paradox

#endif // PARADOX_SIM_LOGGING_HH
